module Obs = Rtlsat_obs.Obs
module Json = Rtlsat_obs.Json
module Engines = Rtlsat_harness.Engines
module Req = Rtlsat_harness.Req
module Report = Rtlsat_harness.Report

type config = {
  seed : int;
  count : int;
  gen : Gen.cfg;
  engines : Engines.engine list;
  req : Req.t;
  deadline : float;
  cert_budget : int;
  shrink_steps : int;
  obs : Obs.t;
  log : (int -> Case.t -> Oracle.outcome -> unit) option;
}

let default =
  {
    seed = 0;
    count = 100;
    gen = Gen.default;
    engines = Oracle.default_engines;
    req = Req.make ~timeout:2.0 ();
    deadline = infinity;
    cert_budget = 4096;
    shrink_steps = 128;
    obs = Obs.disabled;
    log = None;
  }

type failure = {
  f_index : int;
  f_seed : int;
  f_case : Case.t;
  f_outcome : Oracle.outcome;
  f_steps : int;
}

type summary = {
  instances : int;
  sat : int;
  unsat : int;
  timeouts : int;
  wall : float;
  failures : failure list;
  stopped_early : bool;
}

let instance_seed cfg i = cfg.seed + i

let run cfg =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let sat = ref 0 and unsat = ref 0 and timeouts = ref 0 in
  let instances = ref 0 in
  let failures = ref [] in
  let stopped = ref false in
  let i = ref 0 in
  (* rate-limited campaign telemetry, so a long campaign's trace shows
     where the time went even before the summary *)
  let last_progress = ref 0.0 in
  let progress () =
    if Obs.tracing cfg.obs then begin
      let now = elapsed () in
      if now -. !last_progress >= 0.5 then begin
        last_progress := now;
        Obs.event cfg.obs "fuzz.progress"
          [
            ("instances", Json.Int !instances);
            ("sat", Json.Int !sat);
            ("unsat", Json.Int !unsat);
            ("timeouts", Json.Int !timeouts);
            ("failures", Json.Int (List.length !failures));
            ("rate", Json.Float (float_of_int !instances /. max now 1e-9));
          ]
      end
    end
  in
  while !i < cfg.count && not !stopped do
    if elapsed () > cfg.deadline then stopped := true
    else begin
      let iseed = instance_seed cfg !i in
      let case = Gen.circuit ~cfg:cfg.gen ~seed:iseed () in
      let oracle c =
        Oracle.check ~engines:cfg.engines ~req:cfg.req
          ~cert_budget:cfg.cert_budget ~seed:iseed c
      in
      let outcome = oracle case in
      incr instances;
      Obs.incr cfg.obs "fuzz.instances";
      let has v =
        List.exists (fun (_, w) -> w = v) outcome.Oracle.verdicts
      in
      if has Engines.Sat then (incr sat; Obs.incr cfg.obs "fuzz.sat")
      else if has Engines.Unsat then (incr unsat; Obs.incr cfg.obs "fuzz.unsat")
      else (incr timeouts; Obs.incr cfg.obs "fuzz.timeouts");
      (match cfg.log with Some f -> f !i case outcome | None -> ());
      (match outcome.Oracle.failure with
       | None -> ()
       | Some _ ->
         Obs.incr cfg.obs "fuzz.discrepancies";
         let still_failing c = (oracle c).Oracle.failure <> None in
         let small, steps =
           Shrink.shrink ~max_steps:cfg.shrink_steps ~still_failing case
         in
         Obs.add cfg.obs "fuzz.shrink_steps" steps;
         let f_outcome = oracle small in
         failures :=
           { f_index = !i; f_seed = iseed; f_case = small; f_outcome;
             f_steps = steps }
           :: !failures);
      progress ();
      incr i
    end
  done;
  {
    instances = !instances;
    sat = !sat;
    unsat = !unsat;
    timeouts = !timeouts;
    wall = elapsed ();
    failures = List.rev !failures;
    stopped_early = !stopped;
  }

let failure_reason (o : Oracle.outcome) =
  match o.Oracle.failure with
  | None -> "none"
  | Some Oracle.Disagree -> "disagreement"
  | Some (Oracle.Witness_rejected (e, _)) ->
    "witness-rejected:" ^ Engines.engine_name e
  | Some (Oracle.Unsat_refuted _) -> "unsat-refuted"

let failure_json f =
  Json.Obj
    [
      ("index", Json.Int f.f_index);
      ("seed", Json.Int f.f_seed);
      ("reason", Json.Str (failure_reason f.f_outcome));
      ("verdicts",
       Json.Obj
         (List.map
            (fun (e, v) ->
               (Engines.engine_name e, Json.Str (Report.verdict_string v)))
            f.f_outcome.Oracle.verdicts));
      ("bound", Json.Int f.f_case.Case.bound);
      ("semantics", Json.Str (Case.semantics_name f.f_case.Case.semantics));
      ("shrink_steps", Json.Int f.f_steps);
      ("circuit", Json.Str (Case.to_string f.f_case));
    ]

let summary_json cfg s =
  Report.fuzz_json ~seed:cfg.seed ~count:cfg.count ~instances:s.instances
    ~sat:s.sat ~unsat:s.unsat ~timeouts:s.timeouts ~wall_s:s.wall
    ~failures:(List.map failure_json s.failures)
    ~metrics:
      (if cfg.obs.Obs.enabled then Some (Obs.snapshot cfg.obs) else None)
