(** Seeded random generator of well-typed RTL netlists.

    Instances are built through the width-checked {!Rtlsat_rtl.Netlist}
    builders, so every generated circuit satisfies the IR invariants by
    construction.  The generator deliberately stresses the corners the
    engines disagree on first:

    - every {!Rtlsat_rtl.Ir.op} constructor is requested at least once
      per instance (budget permitting) before random growth;
    - the width distribution is biased towards the edges 1 and 61;
    - both wrapping and width-extending adders are emitted;
    - [Extract] ranges are biased to the msb/lsb boundaries and to
      full-width extracts;
    - circuits optionally contain registers (with feedback), making the
      instance a genuine sequential BMC problem;
    - the BMC bound and violation semantics ([Final]/[Any]/[Never]) are
      randomized.

    Generation is deterministic in [seed]: equal seeds produce
    byte-identical cases (relied on to reproduce fuzz failures). *)

type cfg = {
  max_nodes : int;  (** operator budget beyond inputs and registers *)
  max_width : int;  (** widest word to generate, clamped to 61 *)
  max_regs : int;   (** 0 forces purely combinational circuits *)
  max_bound : int;  (** BMC frames are drawn from [1..max_bound] *)
}

val default : cfg
(** [{ max_nodes = 32; max_width = 61; max_regs = 2; max_bound = 4 }] *)

val circuit : ?cfg:cfg -> seed:int -> unit -> Case.t
(** Generate the case for [seed]. *)
