open Rtlsat_rtl
module N = Netlist

(* a rewrite decision for one original node; candidates perturb exactly
   one node and keep the rest *)
type action =
  | Keep
  | Subst of Ir.node  (* use this same-width, earlier node instead *)
  | Cst of int        (* collapse to a constant *)
  | Narrow            (* inputs only: halve the width, zext back *)

let max_of_width w = if w >= 61 then (1 lsl 61) - 1 else (1 lsl w) - 1

(* the set of node ids live under [decide]: the cone of the property,
   closed under register feedback *)
let needed (case : Case.t) decide =
  let live = Hashtbl.create 64 in
  let rec visit n =
    if not (Hashtbl.mem live n.Ir.id) then begin
      Hashtbl.add live n.Ir.id ();
      match decide n with
      | Cst _ -> ()
      | Subst m -> visit m
      | Keep | Narrow ->
        List.iter visit (Ir.fanins n);
        (match n.Ir.op with
         | Ir.Reg { next = Some nx; _ } -> visit nx
         | _ -> ())
    end
  in
  visit case.Case.prop;
  live

let node_count case = Hashtbl.length (needed case (fun _ -> Keep))

(* rebuild the live cone under [decide]; None when a rewrite violates
   the width discipline (the candidate is simply skipped) *)
let rebuild (case : Case.t) decide ~bound =
  let src = case.Case.circuit in
  try
    let live = needed case decide in
    let nc = N.create src.Ir.cname in
    let map = Hashtbl.create 64 in
    let m n = Hashtbl.find map n.Ir.id in
    let build_keep n =
      match n.Ir.op with
      | Ir.Input -> N.input nc ~name:(Ir.node_name n) n.Ir.width
      | Ir.Const v -> N.const nc ~width:n.Ir.width v
      | Ir.Not a -> N.not_ nc (m a)
      | Ir.And ns -> N.and_ nc (List.map m (Array.to_list ns))
      | Ir.Or ns -> N.or_ nc (List.map m (Array.to_list ns))
      | Ir.Xor (a, b) -> N.xor_ nc (m a) (m b)
      | Ir.Mux { sel; t; e } -> N.mux nc ~sel:(m sel) ~t:(m t) ~e:(m e) ()
      | Ir.Add { a; b; wrap = true } -> N.add nc (m a) (m b)
      | Ir.Add { a; b; wrap = false } -> N.add_ext nc (m a) (m b)
      | Ir.Sub { a; b } -> N.sub nc (m a) (m b)
      | Ir.Mul_const { k; a } -> N.mul_const nc k (m a)
      | Ir.Cmp { op; a; b } -> N.cmp nc op (m a) (m b)
      | Ir.Concat { hi; lo } -> N.concat nc ~hi:(m hi) ~lo:(m lo)
      | Ir.Extract { a; msb; lsb } -> N.extract nc (m a) ~msb ~lsb
      | Ir.Zext a -> N.zext nc (m a) ~width:n.Ir.width
      | Ir.Shl { a; k } -> N.shl nc (m a) k
      | Ir.Shr { a; k } -> N.shr nc (m a) k
      | Ir.Bitand (a, b) -> N.bitand nc (m a) (m b)
      | Ir.Bitor (a, b) -> N.bitor nc (m a) (m b)
      | Ir.Bitxor (a, b) -> N.bitxor nc (m a) (m b)
      | Ir.Reg { init; _ } ->
        N.reg nc ~name:(Ir.node_name n) ~width:n.Ir.width ~init ()
    in
    List.iter
      (fun n ->
         if Hashtbl.mem live n.Ir.id then begin
           let nn =
             match decide n with
             | Cst v -> N.const nc ~width:n.Ir.width (v land max_of_width n.Ir.width)
             | Subst s -> m s
             | Narrow ->
               (match n.Ir.op with
                | Ir.Input when n.Ir.width >= 2 ->
                  let w' = (n.Ir.width + 1) / 2 in
                  N.zext nc (N.input nc ~name:(Ir.node_name n) w') ~width:n.Ir.width
                | _ -> build_keep n)
             | Keep -> build_keep n
           in
           Hashtbl.replace map n.Ir.id nn
         end)
      (Ir.nodes src);
    List.iter
      (fun r ->
         if Hashtbl.mem live r.Ir.id then
           match (decide r, r.Ir.op) with
           | Keep, Ir.Reg { next = Some nx; _ } -> N.connect (m r) (m nx)
           | _ -> ())
      (Ir.regs src);
    let prop = m case.Case.prop in
    if Ir.is_bool prop then
      Some (Case.make nc ~prop ~bound ~semantics:case.Case.semantics)
    else None
  with Invalid_argument _ | Not_found -> None

let prune case =
  match rebuild case (fun _ -> Keep) ~bound:case.Case.bound with
  | Some c -> c
  | None -> case

(* shrink order: lexicographic on (bound, input bits, operator nodes,
   total nodes) — Narrow adds a zext node but wins on input bits *)
let measure (case : Case.t) =
  let c = case.Case.circuit in
  let ibits = List.fold_left (fun a n -> a + n.Ir.width) 0 (Ir.inputs c) in
  let ops =
    List.fold_left
      (fun a n ->
         match n.Ir.op with Ir.Input | Ir.Const _ | Ir.Reg _ -> a | _ -> a + 1)
      0 (Ir.nodes c)
  in
  (case.Case.bound, ibits, ops, c.Ir.ncount)

let candidates (case : Case.t) =
  let bound = case.Case.bound in
  let keep _ = Keep in
  let only n act x = if x == n then act else Keep in
  let bound_cands = if bound > 1 then [ (keep, bound - 1) ] else [] in
  let node_cands =
    List.concat_map
      (fun n ->
         let with_act acts = List.map (fun a -> (only n a, bound)) acts in
         match n.Ir.op with
         | Ir.Const 0 -> []
         | Ir.Const _ -> with_act [ Cst 0 ]
         | Ir.Input ->
           with_act ((if n.Ir.width >= 2 then [ Narrow ] else []) @ [ Cst 0 ])
         | _ ->
           let subst =
             Ir.fanins n
             |> List.filter (fun f -> f.Ir.width = n.Ir.width)
             |> List.map (fun f -> (only n (Subst f), bound))
           in
           subst @ with_act (if Ir.is_bool n then [ Cst 0; Cst 1 ] else [ Cst 0 ]))
      (List.rev (Ir.nodes case.Case.circuit))
  in
  bound_cands @ node_cands

let shrink ?(max_steps = 256) ~still_failing case =
  let steps = ref 0 in
  (* pruning is not semantics-preserving for the *search*: dead logic
     can be what tickles the failing engine, so verify it *)
  let start =
    let p = prune case in
    if p == case then case
    else begin
      incr steps;
      if still_failing p then p else case
    end
  in
  let best = ref start in
  let continue_ = ref true in
  while !continue_ && !steps < max_steps do
    let cur = !best in
    let mu = measure cur in
    let rec try_cands = function
      | [] -> None
      | (decide, bound) :: rest ->
        if !steps >= max_steps then None
        else (
          match rebuild cur decide ~bound with
          | Some c' when measure c' < mu ->
            incr steps;
            if still_failing c' then Some c' else try_cands rest
          | _ -> try_cands rest)
    in
    match try_cands (candidates cur) with
    | Some c' -> best := c'
    | None -> continue_ := false
  done;
  (!best, !steps)
