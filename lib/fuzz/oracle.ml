open Rtlsat_rtl
module Bmc = Rtlsat_bmc.Bmc
module Engines = Rtlsat_harness.Engines
module Req = Rtlsat_harness.Req
module R = Random.State

type failure =
  | Disagree
  | Witness_rejected of Engines.engine * string
  | Unsat_refuted of int list list

type certificate =
  | Witness_replay
  | Exhaustive of int
  | Sampled of int
  | No_certificate

type outcome = {
  verdicts : (Engines.engine * Engines.verdict) list;
  failure : failure option;
  cert : certificate;
}

let default_engines =
  [
    Engines.Hdpll; Engines.Hdpll_s; Engines.Hdpll_p; Engines.Hdpll_sp;
    Engines.Bitblast; Engines.Lazy_cdp;
  ]

let violated (inst : Bmc.instance) matrix =
  let inputs = Ir.inputs inst.Bmc.source in
  let frame row = List.combine inputs row in
  let traces = Sim.run inst.Bmc.source ~inputs:(List.map frame matrix) in
  let prop_at vals = Sim.value vals inst.Bmc.prop in
  let pv = List.map prop_at traces in
  match inst.Bmc.semantics with
  | Bmc.Final -> List.nth pv (inst.Bmc.bound - 1) = 0
  | Bmc.Any -> List.exists (fun v -> v = 0) pv
  | Bmc.Never -> List.for_all (fun v -> v = 0) pv

(* independent refutation search for a unanimous Unsat: find an input
   matrix whose simulation violates the property *)
let refute ~budget ~seed (inst : Bmc.instance) =
  let inputs = Ir.inputs inst.Bmc.source in
  let widths = List.map (fun n -> n.Ir.width) inputs in
  let bits_per_frame = List.fold_left ( + ) 0 widths in
  let total_bits = bits_per_frame * inst.Bmc.bound in
  let matrix_of_index idx =
    let pos = ref 0 in
    List.init inst.Bmc.bound (fun _ ->
        List.map
          (fun w ->
             let v = (idx lsr !pos) land ((1 lsl w) - 1) in
             pos := !pos + w;
             v)
          widths)
  in
  if total_bits <= 20 && 1 lsl total_bits <= budget then begin
    let space = 1 lsl total_bits in
    let rec scan i =
      if i >= space then None
      else
        let m = matrix_of_index i in
        if violated inst m then Some (m, Exhaustive space) else scan (i + 1)
    in
    scan 0
  end
  else begin
    let rng = R.make [| 0x0dd5; seed |] in
    let random_matrix () =
      List.init inst.Bmc.bound (fun _ ->
          List.map
            (fun w ->
               let maxv = if w >= 61 then (1 lsl 61) - 1 else (1 lsl w) - 1 in
               R.full_int rng (maxv + 1))
            widths)
    in
    let rec scan i =
      if i >= budget then None
      else
        let m = random_matrix () in
        if violated inst m then Some (m, Sampled budget) else scan (i + 1)
    in
    scan 0
  end

let default_req = Req.make ~timeout:10.0 ()

let check ?(engines = default_engines) ?(req = default_req)
    ?(cert_budget = 4096) ?(seed = 0) (case : Case.t) =
  let inst = Case.instance case in
  let verdicts =
    List.map
      (fun e -> (e, (Engines.run_instance ~req e inst).Engines.verdict))
      engines
  in
  let aborted =
    List.find_map
      (function e, Engines.Abort msg -> Some (e, msg) | _ -> None)
      verdicts
  in
  let has v = List.exists (fun (_, w) -> w = v) verdicts in
  match aborted with
  | Some (e, msg) ->
    { verdicts; failure = Some (Witness_rejected (e, msg)); cert = No_certificate }
  | None ->
    if has Engines.Sat && has Engines.Unsat then
      { verdicts; failure = Some Disagree; cert = No_certificate }
    else if has Engines.Sat then
      (* models already replayed through Sim inside run_instance *)
      { verdicts; failure = None; cert = Witness_replay }
    else if has Engines.Unsat then (
      match refute ~budget:cert_budget ~seed inst with
      | Some (matrix, _) ->
        { verdicts; failure = Some (Unsat_refuted matrix); cert = No_certificate }
      | None ->
        let cert =
          (* recompute the shape of the search that came up empty *)
          let bits =
            inst.Bmc.bound
            * List.fold_left
                (fun acc n -> acc + n.Ir.width)
                0
                (Ir.inputs inst.Bmc.source)
          in
          if bits <= 20 && 1 lsl bits <= cert_budget then Exhaustive (1 lsl bits)
          else Sampled cert_budget
        in
        { verdicts; failure = None; cert })
    else { verdicts; failure = None; cert = No_certificate }

let describe o =
  let vs =
    String.concat " "
      (List.map
         (fun (e, v) ->
            Printf.sprintf "%s=%s" (Engines.engine_name e)
              (Engines.verdict_symbol v))
         o.verdicts)
  in
  let tail =
    match o.failure with
    | None -> (
        match o.cert with
        | Witness_replay -> " [sat, witness replayed]"
        | Exhaustive n -> Printf.sprintf " [unsat, %d matrices exhausted]" n
        | Sampled n -> Printf.sprintf " [unsat, %d matrices sampled]" n
        | No_certificate -> " [timeout]")
    | Some Disagree -> " [DISAGREEMENT]"
    | Some (Witness_rejected (e, msg)) ->
      Printf.sprintf " [WITNESS REJECTED: %s: %s]" (Engines.engine_name e) msg
    | Some (Unsat_refuted _) -> " [UNSAT REFUTED BY SIMULATION]"
  in
  vs ^ tail
