open Rtlsat_rtl
module Bmc = Rtlsat_bmc.Bmc

type t = {
  circuit : Ir.circuit;
  prop : Ir.node;
  bound : int;
  semantics : Bmc.semantics;
}

let make circuit ~prop ~bound ~semantics =
  if not (Ir.is_bool prop) then invalid_arg "Case.make: property must be Boolean";
  if bound < 1 then invalid_arg "Case.make: bound must be >= 1";
  { circuit; prop; bound; semantics }

let instance t =
  Bmc.make t.circuit ~prop:t.prop ~bound:t.bound ~semantics:t.semantics ()

let semantics_name = function
  | Bmc.Final -> "final"
  | Bmc.Any -> "any"
  | Bmc.Never -> "never"

let semantics_of_name = function
  | "final" -> Bmc.Final
  | "any" -> Bmc.Any
  | "never" -> Bmc.Never
  | s -> failwith (Printf.sprintf "fuzz-case: unknown semantics %S" s)

let to_string t =
  let c = t.circuit in
  let header =
    Printf.sprintf "# fuzz-case bound=%d semantics=%s\n" t.bound
      (semantics_name t.semantics)
  in
  (* print with the property exported as port "prop", restoring the
     circuit's own output list afterwards *)
  let saved = c.Ir.outputs in
  (match List.assoc_opt "prop" saved with
   | Some p when p == t.prop -> ()
   | _ ->
     c.Ir.outputs <-
       ("prop", t.prop) :: List.filter (fun (port, _) -> port <> "prop") saved);
  let body = Text.to_string c in
  c.Ir.outputs <- saved;
  header ^ body

let of_string text =
  let bound = ref 1 and semantics = ref Bmc.Final in
  let directive line =
    match String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
    with
    | "#" :: "fuzz-case" :: fields ->
      List.iter
        (fun field ->
           match String.split_on_char '=' field with
           | [ "bound"; v ] ->
             (match int_of_string_opt v with
              | Some b when b >= 1 -> bound := b
              | _ -> failwith (Printf.sprintf "fuzz-case: bad bound %S" v))
           | [ "semantics"; v ] -> semantics := semantics_of_name v
           | _ -> failwith (Printf.sprintf "fuzz-case: unknown directive field %S" field))
        fields
    | _ -> ()
  in
  List.iter directive (String.split_on_char '\n' text);
  let circuit = Text.parse text in
  let prop =
    match List.assoc_opt "prop" circuit.Ir.outputs with
    | Some p -> p
    | None ->
      (match List.rev circuit.Ir.outputs with
       | (_, p) :: _ -> p
       | [] -> failwith "fuzz-case: no output port to use as property")
  in
  if not (Ir.is_bool prop) then failwith "fuzz-case: property output is not Boolean";
  { circuit; prop; bound = !bound; semantics = !semantics }

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
