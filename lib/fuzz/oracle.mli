(** Cross-engine differential oracle.

    One fuzz case is decided by all six engines — the four HDPLL
    configurations (±S, ±P), the eager bit-blast CDCL translation and
    the lazy CDP baseline — and the answers are cross-checked:

    - all non-timeout verdicts must agree;
    - every [Sat] model is replayed through the cycle-accurate
      simulator ({!Rtlsat_bmc.Bmc.witness_ok}, performed inside
      {!Rtlsat_harness.Engines.run_instance}; a model that does not
      replay surfaces as [Witness_rejected]);
    - a unanimous [Unsat] is checked against an independent
      certificate: when the instance's input space fits the budget the
      oracle simulates {e every} input matrix (a complete refutation
      check), otherwise it samples the space, looking for a violating
      trace no engine admitted exists.

    Timeouts never count as disagreement; an instance where every
    engine times out is reported as such and carries no certificate. *)

module Engines = Rtlsat_harness.Engines

type failure =
  | Disagree
      (** at least one engine answered [Sat] and another [Unsat] *)
  | Witness_rejected of Engines.engine * string
      (** the engine's model failed simulator replay *)
  | Unsat_refuted of int list list
      (** all engines said [Unsat], yet simulating the carried input
          matrix (one row per frame, values in [Ir.inputs] order)
          violates the property *)

type certificate =
  | Witness_replay       (** Sat: model replayed through the simulator *)
  | Exhaustive of int    (** Unsat: all [n] input matrices simulated *)
  | Sampled of int       (** Unsat: [n] random matrices simulated *)
  | No_certificate       (** every engine timed out *)

type outcome = {
  verdicts : (Engines.engine * Engines.verdict) list;
  failure : failure option;
  cert : certificate;
}

val default_engines : Engines.engine list
(** All six engines. *)

val violated : Rtlsat_bmc.Bmc.instance -> int list list -> bool
(** [violated inst matrix] simulates the source circuit under the
    per-frame input values and reports whether the property is
    violated in the sense of the instance's semantics.  Used both by
    the certificate search and by tests. *)

val check :
  ?engines:Engines.engine list ->
  ?req:Rtlsat_harness.Req.t ->
  ?cert_budget:int ->
  ?seed:int ->
  Case.t ->
  outcome
(** Decide the case with every engine and cross-check.  [req] (default
    a 10 s-budget request with pre/inprocessing on) is the request
    context of every engine run ({!Engines.run_instance}) — its
    [timeout] bounds each run, its [simplify]/[inprocess] select
    pre/inprocessing, so the campaign cross-checks the engines
    {e with} simplification unless told otherwise.  [cert_budget]
    (default 4096) is the number of simulated input matrices —
    exhaustive when the whole space fits, sampled otherwise; [seed]
    (default 0) determinizes the sampling. *)

val describe : outcome -> string
(** One-line human summary, e.g.
    ["hdpll=S hdpll+s=S ... lazy-cdp=U [disagreement]"]. *)
