open Rtlsat_rtl
module R = Random.State
module Bmc = Rtlsat_bmc.Bmc

type cfg = {
  max_nodes : int;
  max_width : int;
  max_regs : int;
  max_bound : int;
}

let default = { max_nodes = 32; max_width = 61; max_regs = 2; max_bound = 4 }

(* the op kinds requested during the coverage phase; every Ir.op
   constructor except Input/Reg (created up front) appears here *)
type kind =
  | KConst | KNot | KAnd | KOr | KXor | KMux | KAddWrap | KAddExt | KSub
  | KMulc | KCmp | KConcat | KExtract | KZext | KShl | KShr
  | KBitand | KBitor | KBitxor

let all_kinds =
  [
    KConst; KNot; KAnd; KOr; KXor; KMux; KAddWrap; KAddExt; KSub; KMulc;
    KCmp; KConcat; KExtract; KZext; KShl; KShr; KBitand; KBitor; KBitxor;
  ]

let max_of_width w = if w >= 61 then (1 lsl 61) - 1 else (1 lsl w) - 1

let circuit ?(cfg = default) ~seed () =
  let cfg = { cfg with max_width = min 61 (max 1 cfg.max_width) } in
  let rng = R.make [| 0x6fc5; seed |] in
  let c = Netlist.create (Printf.sprintf "fuzz%d" seed) in
  let words = ref [] in
  let bools = ref [] in
  let register n =
    words := n :: !words;
    if Ir.is_bool n then bools := n :: !bools;
    n
  in
  let pick l = List.nth l (R.int rng (List.length l)) in
  let pick_value w =
    (* biased to 0, 1 and the all-ones word *)
    let maxv = max_of_width w in
    match R.int rng 4 with
    | 0 -> 0
    | 1 -> min 1 maxv
    | 2 -> maxv
    | _ -> R.full_int rng (maxv + 1)
  in
  let fresh_const w = register (Netlist.const c ~width:w (pick_value w)) in
  let pick_word () = pick !words in
  (* a same-width partner for [a]; occasionally a fresh constant to
     keep the instance from collapsing into pure symmetry *)
  let partner a =
    let same = List.filter (fun n -> n.Ir.width = a.Ir.width) !words in
    if same = [] || R.int rng 4 = 0 then fresh_const a.Ir.width else pick same
  in
  let pick_bool () =
    match !bools with
    | [] ->
      let a = pick_word () in
      register (Netlist.eq c a (fresh_const a.Ir.width))
    | _ :: _ -> pick !bools
  in
  let pick_narrow limit =
    (* a word no wider than [limit]; the first input guarantees one *)
    let limit = max 1 limit in
    match List.filter (fun n -> n.Ir.width <= limit) !words with
    | [] -> fresh_const (min limit cfg.max_width)
    | narrow -> pick narrow
  in

  (* ---- primary inputs: one guaranteed-narrow, then random widths
     biased to the 1 and 61 edges ---- *)
  let width_pool = [| 1; 1; 2; 3; 4; 5; 8; 61 |] in
  let pick_width () = min cfg.max_width width_pool.(R.int rng (Array.length width_pool)) in
  let n_inputs = 2 + R.int rng 3 in
  ignore
    (register (Netlist.input c ~name:"in0" (min cfg.max_width (2 + R.int rng 4))));
  for i = 1 to n_inputs - 1 do
    ignore (register (Netlist.input c ~name:(Printf.sprintf "in%d" i) (pick_width ())))
  done;

  (* ---- registers (sequential circuits for BMC) ---- *)
  let n_regs = if cfg.max_regs <= 0 then 0 else R.int rng (cfg.max_regs + 1) in
  let regs =
    List.init n_regs (fun i ->
        let w = min cfg.max_width (1 + R.int rng 4) in
        let r =
          Netlist.reg c ~name:(Printf.sprintf "r%d" i) ~width:w
            ~init:(pick_value w) ()
        in
        register r)
  in

  (* ---- operator growth ---- *)
  let emit kind =
    match kind with
    | KConst -> ignore (fresh_const (pick_width ()))
    | KNot -> ignore (register (Netlist.not_ c (pick_bool ())))
    | KAnd | KOr ->
      let ns = List.init (2 + R.int rng 2) (fun _ -> pick_bool ()) in
      ignore
        (register (if kind = KAnd then Netlist.and_ c ns else Netlist.or_ c ns))
    | KXor -> ignore (register (Netlist.xor_ c (pick_bool ()) (pick_bool ())))
    | KMux ->
      let t = pick_word () in
      ignore
        (register (Netlist.mux c ~sel:(pick_bool ()) ~t ~e:(partner t) ()))
    | KAddWrap ->
      let a = pick_word () in
      ignore (register (Netlist.add c a (partner a)))
    | KAddExt ->
      let a = pick_narrow (min 60 (cfg.max_width - 1)) in
      ignore (register (Netlist.add_ext c a (partner a)))
    | KSub ->
      let a = pick_word () in
      ignore (register (Netlist.sub c a (partner a)))
    | KMulc ->
      let a = pick_narrow (min 55 cfg.max_width) in
      ignore (register (Netlist.mul_const c (2 + R.int rng 4) a))
    | KCmp ->
      let a = pick_word () in
      let op = pick [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ] in
      ignore (register (Netlist.cmp c op a (partner a)))
    | KConcat ->
      let hi = pick_narrow (cfg.max_width - 1) in
      let lo = pick_narrow (cfg.max_width - hi.Ir.width) in
      ignore (register (Netlist.concat c ~hi ~lo))
    | KExtract ->
      let a = pick_word () in
      let w = a.Ir.width in
      let msb, lsb =
        (* boundary-biased: msb bit, lsb bit, full width, then random *)
        match R.int rng 5 with
        | 0 -> (w - 1, w - 1)
        | 1 -> (0, 0)
        | 2 -> (w - 1, 0)
        | 3 -> (w - 1, R.int rng w)
        | _ ->
          let lsb = R.int rng w in
          (lsb + R.int rng (w - lsb), lsb)
      in
      ignore (register (Netlist.extract c a ~msb ~lsb))
    | KZext ->
      if cfg.max_width >= 2 then begin
        let a = pick_narrow (cfg.max_width - 1) in
        let width =
          if R.int rng 2 = 0 then a.Ir.width + 1
          else a.Ir.width + 1 + R.int rng (cfg.max_width - a.Ir.width)
        in
        ignore (register (Netlist.zext c a ~width))
      end
    | KShl ->
      if cfg.max_width >= 2 then begin
        let a = pick_narrow (cfg.max_width - 1) in
        let k = 1 + R.int rng (min 3 (cfg.max_width - a.Ir.width)) in
        ignore (register (Netlist.shl c a k))
      end
    | KShr ->
      (match List.filter (fun n -> n.Ir.width >= 2) !words with
       | [] -> ()
       | wide ->
         let a = pick wide in
         ignore (register (Netlist.shr c a (1 + R.int rng (a.Ir.width - 1)))))
    | KBitand | KBitor | KBitxor ->
      let a = pick_word () in
      let b = partner a in
      let mk =
        match kind with
        | KBitand -> Netlist.bitand
        | KBitor -> Netlist.bitor
        | _ -> Netlist.bitxor
      in
      ignore (register (mk c a b))
  in
  (* coverage phase: one of each kind (budget permitting), then random
     growth up to the node budget *)
  let budget_left () = c.Ir.ncount < cfg.max_nodes + n_inputs + n_regs in
  List.iter (fun k -> if budget_left () then emit k) all_kinds;
  (* some kinds are no-ops under restrictive configs (e.g. zext when
     max_width = 1), so cap the growth loop as well as the node budget *)
  let attempts = ref 0 in
  while budget_left () && !attempts < 16 * cfg.max_nodes do
    incr attempts;
    emit (pick all_kinds)
  done;

  (* ---- close register feedback ---- *)
  List.iter
    (fun r ->
       let same =
         List.filter (fun n -> n.Ir.width = r.Ir.width && n != r) !words
       in
       let next = if same = [] then fresh_const r.Ir.width else pick same in
       Netlist.connect r next)
    regs;

  (* ---- property: a Boolean, sometimes a small combination ---- *)
  let prop =
    match R.int rng 4 with
    | 0 -> register (Netlist.and_ c [ pick_bool (); pick_bool () ])
    | 1 -> register (Netlist.or_ c [ pick_bool (); pick_bool () ])
    | 2 -> register (Netlist.not_ c (pick_bool ()))
    | _ -> pick_bool ()
  in
  Netlist.output c "prop" prop;

  let bound = 1 + R.int rng cfg.max_bound in
  let semantics =
    match R.int rng 5 with
    | 0 | 1 -> Bmc.Final
    | 2 | 3 -> Bmc.Any
    | _ -> Bmc.Never
  in
  Case.make c ~prop ~bound ~semantics
