type outcome = Sat of int array | Unsat of int list | Unknown

let to_fme ~bounds lins =
  let of_lin i (l : Boxsearch.lin) =
    Fme.ineq ~origin:[ i ] l.Boxsearch.terms l.Boxsearch.const
  in
  let constraint_ineqs = List.mapi of_lin lins in
  let bound_ineqs =
    List.concat
      (List.init (Array.length bounds) (fun v ->
           let lo, hi = bounds.(v) in
           [
             Fme.ineq ~origin:[ (-v) - 1 ] [ (1, v) ] (-hi); (* v <= hi *)
             Fme.ineq ~origin:[ (-v) - 1 ] [ (-1, v) ] lo;   (* v >= lo *)
           ]))
  in
  constraint_ineqs @ bound_ineqs

let empty_var bounds =
  let found = ref None in
  Array.iteri (fun v (lo, hi) -> if !found = None && lo > hi then found := Some v) bounds;
  !found

module Obs = Rtlsat_obs.Obs

let decide ?(obs = Obs.disabled) ?max_nodes ?deadline ?(fme_max_vars = 64) ~bounds lins =
  Obs.incr obs "fme.calls";
  match empty_var bounds with
  | Some v ->
    Obs.incr obs "fme.empty_box";
    Unsat [ (-v) - 1 ]
  | None ->
    let live =
      List.fold_left
        (fun acc (l : Boxsearch.lin) ->
           List.fold_left (fun acc (_, v) -> if List.mem v acc then acc else v :: acc)
             acc l.Boxsearch.terms)
        [] lins
    in
    let fme_verdict =
      if List.length live > fme_max_vars then begin
        Obs.incr obs "fme.skipped_too_many_vars";
        Fme.Feasible
      end
      else begin
        let system = to_fme ~bounds lins in
        Obs.span obs Obs.Fme (fun () ->
            try Fme.check ~shadow:`Real ?deadline system
            with Fme.Budget_exceeded ->
              Obs.incr obs "fme.budget_exceeded";
              Fme.Feasible)
      end
    in
    (match fme_verdict with
     | Fme.Infeasible core ->
       Obs.incr obs "fme.refuted";
       Unsat core
     | Fme.Feasible ->
       (* The dark shadow cannot refute; when it is feasible an integer
          point exists and the box search will find it quickly.  Either
          way the complete search gives the final answer (and the
          witness). *)
       Obs.incr obs "fme.box_searches";
       (match Boxsearch.solve ?max_nodes ?deadline ~bounds lins with
        | Boxsearch.Point p ->
          Obs.incr obs "fme.box_sat";
          Sat p
        | Boxsearch.Empty ->
          Obs.incr obs "fme.box_empty";
          (* no refined core available: everything participated,
             including the box itself *)
          Unsat
            (List.init (List.length lins) (fun i -> i)
             @ List.init (Array.length bounds) (fun v -> (-v) - 1))
        | Boxsearch.Limit ->
          Obs.incr obs "fme.box_limit";
          Unknown))
