module B = Rtlsat_num.Bigint
module Checked = Rtlsat_num.Checked

let ( let* ) = Option.bind

type lin = { terms : (int * int) list; const : int }

let lin coeffs const =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
       Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
    coeffs;
  let terms =
    Hashtbl.fold (fun v c acc -> if c = 0 then acc else (c, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  { terms; const }

let lin_eq coeffs const =
  (lin coeffs const, lin (List.map (fun (c, v) -> (-c, v)) coeffs) (-const))

type result = Point of int array | Empty | Limit

let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

exception Empty_domain

(* narrow one constraint; returns true if some bound changed.
   Products are overflow-checked (coefficients reach 2^60, domains
   2^61 - 1): an overflowing residual skips that variable's
   tightening, leaving the split loop and the exact leaf check to
   decide — sound either way *)
let narrow bounds l =
  (* minimal value of Σ terms + const, excluding term of var v *)
  let changed = ref false in
  let min_rest skip =
    List.fold_left
      (fun acc (c, v) ->
         if v = skip then acc
         else
           let* acc = acc in
           let lo, hi = bounds.(v) in
           let* p = Checked.mul c (if c > 0 then lo else hi) in
           Checked.add acc p)
      (Some l.const) l.terms
  in
  List.iter
    (fun (c, v) ->
       let lo, hi = bounds.(v) in
       match min_rest v with
       | None -> ()
       | Some rest when rest = min_int -> ()
       | Some rest ->
         (* c·v + rest ≤ 0 must be achievable: c·v ≤ -rest *)
         if c > 0 then begin
           let ub = fdiv (-rest) c in
           if ub < hi then begin
             if ub < lo then raise Empty_domain;
             bounds.(v) <- (lo, ub);
             changed := true
           end
         end
         else begin
           (* c < 0: v ≥ ceil(rest / -c) = -floor(-rest / -c) *)
           let lb = -fdiv (-rest) (-c) in
           if lb > lo then begin
             if lb > hi then raise Empty_domain;
             bounds.(v) <- (lb, hi);
             changed := true
           end
         end)
    l.terms;
  !changed

let fixpoint bounds lins =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun l -> if narrow bounds l then changed := true) lins
  done

let propagate_bounds ~bounds lins =
  let b = Array.copy bounds in
  match fixpoint b lins with
  | () -> Some b
  | exception Empty_domain -> None

(* leaf check at a fully fixed point: evaluate exactly (native
   products can wrap here too) *)
let all_satisfied bounds lins =
  List.for_all
    (fun l ->
       let v =
         List.fold_left
           (fun acc (c, v) -> B.add acc (B.mul_int (B.of_int (fst bounds.(v))) c))
           (B.of_int l.const) l.terms
       in
       B.sign v <= 0)
    lins

let solve ?(max_nodes = 1_000_000) ?(deadline = infinity) ~bounds lins =
  let nodes = ref 0 in
  let exception Found of int array in
  let exception Out_of_budget in
  let rec search bounds =
    incr nodes;
    if !nodes > max_nodes
    || (!nodes land 1023 = 0 && deadline < infinity && Rtlsat_obs.Mono.now () > deadline)
    then raise Out_of_budget;
    match fixpoint bounds lins with
    | exception Empty_domain -> ()
    | () ->
      let split = ref (-1) in
      Array.iteri
        (fun v (lo, hi) ->
           if lo < hi && (!split < 0 ||
                          let slo, shi = bounds.(!split) in
                          hi - lo < shi - slo)
           then split := v)
        bounds;
      if !split < 0 then begin
        (* all fixed: the fixpoint guarantees each constraint is
           bounds-consistent, but check outright for safety *)
        if all_satisfied bounds lins then
          raise (Found (Array.map fst bounds))
      end
      else begin
        let v = !split in
        let lo, hi = bounds.(v) in
        let mid = lo + ((hi - lo) / 2) in
        let left = Array.copy bounds in
        left.(v) <- (lo, mid);
        search left;
        let right = Array.copy bounds in
        right.(v) <- (mid + 1, hi);
        search right
      end
  in
  try
    search (Array.copy bounds);
    Empty
  with
  | Found p -> Point p
  | Out_of_budget -> Limit
