(** Fourier–Motzkin elimination over the integers, with unsatisfiable
    cores — our reimplementation of the arithmetic back-end the paper
    takes from the Omega library [13].

    A system is a conjunction of inequalities [Σ aᵢ·xᵢ + c ≤ 0] over
    integer variables.  Elimination uses exact {!Rtlsat_num.Bigint}
    coefficients (FME coefficients grow multiplicatively), normalizes
    every derived inequality by the gcd of its coefficients with floor
    rounding of the constant — sound and tightening for integer
    feasibility — and tracks origin tags so an infeasibility comes
    with the subset of input inequalities that caused it (the unsat
    core used for conflict learning).

    [`Real] elimination decides rational feasibility of the normalized
    system: [Infeasible] is definitive for the integer system too.
    [`Dark] adds the Omega-test dark-shadow strengthening
    [(a-1)(b-1)] to each combination: then [Feasible] guarantees an
    integer point exists, while [Infeasible] may be spurious — use
    {!Boxsearch} to decide exactly. *)

module B = Rtlsat_num.Bigint

type ineq = {
  terms : (B.t * int) list;  (** (coefficient, variable), sorted by variable *)
  const : B.t;
  origin : int list;         (** sorted tags of contributing inputs *)
}

val ineq : ?origin:int list -> (int * int) list -> int -> ineq
(** [ineq coeffs const] builds [Σ coefᵢ·varᵢ + const ≤ 0] from native
    integers; duplicate variables are merged. *)

val eq_ineqs : ?origin:int list -> (int * int) list -> int -> ineq * ineq
(** Both directions of [Σ coefᵢ·varᵢ + const = 0]. *)

val eval_ineq : (int -> int) -> ineq -> bool

val pp_ineq : Format.formatter -> ineq -> unit

type verdict =
  | Feasible
  | Infeasible of int list  (** unsat core: sorted origin tags *)

exception Budget_exceeded
(** Raised by {!check} when the wall-clock deadline passes or the
    derived-inequality budget is exhausted mid-elimination. *)

val check :
  ?shadow:[ `Real | `Dark ] ->
  ?deadline:float ->
  ?max_derived:int ->
  ineq list ->
  verdict
(** Eliminate every variable (greedy fewest-products order) and test
    the residual constants.  Default shadow: [`Real]; [max_derived]
    (default [200_000]) bounds the total number of derived
    inequalities.  @raise Budget_exceeded on either budget.

    An [Infeasible] core is minimized by a drop-loop that re-runs the
    elimination on the restricted subsystem before discarding any
    constraint, so restricting the input to the returned tags and
    re-running {!check} is guaranteed to report [Infeasible] again
    (the property checked by [test/test_fme.ml]).  The re-verification
    shares the derived-inequality and deadline budgets; if they run
    out mid-minimization the full origin set of the system is returned
    instead, which trivially re-verifies. *)
