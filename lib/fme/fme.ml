module B = Rtlsat_num.Bigint

type ineq = {
  terms : (B.t * int) list;
  const : B.t;
  origin : int list;
}

let merge_origins a b = List.sort_uniq compare (a @ b)

(* normalize: merge duplicate vars, drop zeros, divide by gcd of
   coefficients with floor rounding of the constant (integer-sound) *)
let normalize terms const origin =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
       let cur = Option.value ~default:B.zero (Hashtbl.find_opt tbl v) in
       Hashtbl.replace tbl v (B.add cur c))
    terms;
  let terms =
    Hashtbl.fold (fun v c acc -> if B.is_zero c then acc else (c, v) :: acc) tbl []
    |> List.sort (fun (_, v1) (_, v2) -> compare v1 v2)
  in
  match terms with
  | [] -> { terms = []; const; origin }
  | _ ->
    let g = List.fold_left (fun acc (c, _) -> B.gcd acc c) B.zero terms in
    if B.is_one g then { terms; const; origin }
    else begin
      (* Σ aᵢxᵢ ≤ -c  ⇒  Σ (aᵢ/g)xᵢ ≤ ⌊-c/g⌋ *)
      let terms = List.map (fun (c, v) -> (fst (B.tdiv_rem c g), v)) terms in
      let bound = B.fdiv (B.neg const) g in
      { terms; const = B.neg bound; origin }
    end

let ineq ?(origin = []) coeffs const =
  normalize
    (List.map (fun (c, v) -> (B.of_int c, v)) coeffs)
    (B.of_int const)
    (List.sort_uniq compare origin)

let eq_ineqs ?origin coeffs const =
  let le = ineq ?origin coeffs const in
  let ge = ineq ?origin (List.map (fun (c, v) -> (-c, v)) coeffs) (-const) in
  (le, ge)

let eval_ineq env i =
  let total =
    List.fold_left
      (fun acc (c, v) -> B.add acc (B.mul c (B.of_int (env v))))
      i.const i.terms
  in
  B.sign total <= 0

let pp_ineq fmt i =
  let first = ref true in
  List.iter
    (fun (c, v) ->
       if !first then begin
         if B.equal c B.minus_one then Format.fprintf fmt "-"
         else if not (B.is_one c) then Format.fprintf fmt "%a*" B.pp c
       end
       else if B.sign c > 0 then begin
         if B.is_one c then Format.fprintf fmt " + "
         else Format.fprintf fmt " + %a*" B.pp c
       end
       else begin
         let a = B.abs c in
         if B.is_one a then Format.fprintf fmt " - " else Format.fprintf fmt " - %a*" B.pp a
       end;
       Format.fprintf fmt "x%d" v;
       first := false)
    i.terms;
  if !first then Format.fprintf fmt "%a <= 0" B.pp i.const
  else if B.sign i.const > 0 then Format.fprintf fmt " + %a <= 0" B.pp i.const
  else if B.sign i.const < 0 then Format.fprintf fmt " - %a <= 0" B.pp (B.abs i.const)
  else Format.fprintf fmt " <= 0"

type verdict = Feasible | Infeasible of int list

exception Budget_exceeded

let coeff_of v i =
  match List.find_opt (fun (_, u) -> u = v) i.terms with
  | Some (c, _) -> c
  | None -> B.zero

let vars_of system =
  List.fold_left
    (fun acc i -> List.fold_left (fun acc (_, v) -> v :: acc) acc i.terms)
    [] system
  |> List.sort_uniq compare

(* combine an upper bound (a>0: a·x ≤ -r_up) with a lower bound
   (coefficient -b, b>0: b·x ≥ r_lo): feasible iff a·r_lo + b·r_up ≤ 0
   where r are the residues.  Dark shadow adds (a-1)(b-1). *)
let combine ~dark v up lo =
  let a = coeff_of v up in
  let b = B.neg (coeff_of v lo) in
  assert (B.sign a > 0 && B.sign b > 0);
  let scale k i =
    ( List.filter_map
        (fun (c, u) -> if u = v then None else Some (B.mul k c, u))
        i.terms,
      B.mul k i.const )
  in
  let t1, c1 = scale b up in
  let t2, c2 = scale a lo in
  let extra =
    if dark then B.mul (B.sub a B.one) (B.sub b B.one) else B.zero
  in
  normalize (t1 @ t2) (B.add (B.add c1 c2) extra) (merge_origins up.origin lo.origin)

let check ?(shadow = `Real) ?(deadline = infinity) ?(max_derived = 200_000) system =
  let dark = shadow = `Dark in
  let derived_count = ref 0 in
  let budget n =
    derived_count := !derived_count + n;
    if !derived_count > max_derived
    || (deadline < infinity && Rtlsat_obs.Mono.now () > deadline)
    then raise Budget_exceeded
  in
  let exception Found_core of int list in
  let run system =
    let constant_check i =
      if i.terms = [] && B.sign i.const > 0 then raise (Found_core i.origin)
    in
    try
      List.iter constant_check system;
      let rec eliminate system = function
        | [] -> ()
        | vars ->
          (* greedy: pick the variable minimizing |lower|·|upper| *)
          let cost v =
            let ups = List.length (List.filter (fun i -> B.sign (coeff_of v i) > 0) system) in
            let los = List.length (List.filter (fun i -> B.sign (coeff_of v i) < 0) system) in
            ups * los
          in
          let v = List.fold_left (fun best u -> if cost u < cost best then u else best)
              (List.hd vars) (List.tl vars)
          in
          let ups, rest = List.partition (fun i -> B.sign (coeff_of v i) > 0) system in
          let los, rest = List.partition (fun i -> B.sign (coeff_of v i) < 0) rest in
          budget (List.length ups * List.length los);
          let derived =
            List.concat_map (fun up -> List.map (fun lo -> combine ~dark v up lo) los) ups
          in
          List.iter constant_check derived;
          let keep = List.filter (fun i -> i.terms <> []) derived in
          eliminate (keep @ rest) (List.filter (fun u -> u <> v) vars)
      in
      eliminate system (vars_of system);
      Feasible
    with Found_core core -> Infeasible core
  in
  match run system with
  | Feasible -> Feasible
  | Infeasible raw ->
    (* The raw origin set of the contradiction is integer-infeasible
       (every derivation step is integer-sound), but gcd tightening
       makes derivations elimination-order dependent: re-running FME on
       the restricted subsystem alone picks a different greedy order and
       can fail to re-derive the contradiction, i.e. the reported core
       would not verify as a core.  Minimize by a drop-loop that
       re-verifies infeasibility of the remainder before any constraint
       is discarded; every core we return has been re-checked. *)
    let all_tags =
      List.sort_uniq compare (List.concat_map (fun i -> i.origin) system)
    in
    let restrict tags =
      List.filter
        (fun i -> i.origin = [] || List.exists (fun o -> List.mem o tags) i.origin)
        system
    in
    let verified tags =
      match run (restrict tags) with Infeasible _ -> true | Feasible -> false
    in
    let drop_loop start =
      List.fold_left
        (fun kept t ->
           match List.filter (fun u -> u <> t) kept with
           | [] -> kept
           | cand -> if verified cand then cand else kept)
        start start
    in
    (try
       let start = if raw = all_tags || verified raw then raw else all_tags in
       Infeasible (drop_loop start)
     with Budget_exceeded ->
       (* minimization ran out of budget; fall back to the full origin
          set, whose restriction is the input system itself and was
          just proved infeasible *)
       Infeasible all_tags)
