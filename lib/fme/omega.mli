(** Exact integer linear feasibility over finite boxes — the
    arithmetic oracle HDPLL calls on the final solution box (§2.4),
    layered Omega-style:

    + real-shadow FME refutes quickly and yields an unsat core;
    + dark-shadow FME proves integer feasibility quickly;
    + the complete {!Boxsearch} decides the ambiguous cases and
      produces witness points.

    Core tags: [t >= 0] refers to input inequality [t]; [t < 0]
    refers to the domain bounds of variable [-t - 1]. *)

type outcome =
  | Sat of int array        (** witness point *)
  | Unsat of int list       (** core tags (see above) *)
  | Unknown                 (** box-search node budget exhausted *)

val decide :
  ?obs:Rtlsat_obs.Obs.t ->
  ?max_nodes:int ->
  ?deadline:float ->
  ?fme_max_vars:int ->
  bounds:(int * int) array ->
  Boxsearch.lin list ->
  outcome
(** [decide ~bounds lins]: is there an integer point of the box
    satisfying all inequalities?  Inequality [i] of the list carries
    core tag [i].  FME is skipped when more than [fme_max_vars]
    (default 64) variables are live — elimination cost is
    super-polynomial in the variable count — leaving the complete box
    search to decide. *)
