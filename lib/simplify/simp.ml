(* CNF pre/inprocessing: SCC equivalence substitution, subsumption +
   self-subsuming resolution, failed-literal probing and bounded
   variable elimination with clause-recording model reconstruction.
   The pipeline owns no solver state: it maps a clause set to an
   equisatisfiable clause set plus the bookkeeping (repr, elim) needed
   to extend models back to the original variables. *)

let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0
let lit_not l = l lxor 1

type stats = {
  mutable subsumed : int;
  mutable strengthened : int;
  mutable eliminated : int;
  mutable probed : int;
  mutable equivs : int;
  mutable rounds : int;
}

let empty_stats () =
  { subsumed = 0; strengthened = 0; eliminated = 0; probed = 0; equivs = 0;
    rounds = 0 }

let add_stats acc s =
  acc.subsumed <- acc.subsumed + s.subsumed;
  acc.strengthened <- acc.strengthened + s.strengthened;
  acc.eliminated <- acc.eliminated + s.eliminated;
  acc.probed <- acc.probed + s.probed;
  acc.equivs <- acc.equivs + s.equivs;
  acc.rounds <- acc.rounds + s.rounds

type result = {
  r_clauses : int array list;
  r_units : int list;
  r_unsat : bool;
  r_repr : int array;
  r_elim : (int * int array list) list;
  r_stats : stats;
}

let map_lit repr l =
  let r = repr.(lit_var l) in
  if lit_sign l then r else lit_not r

(* 62-bit clause signature: bit per variable class; C subseteq D
   requires sig C land lnot (sig D) = 0 *)
let lit_bit l = 1 lsl (lit_var l mod 62)
let csig c = Array.fold_left (fun s l -> s lor lit_bit l) 0 c
let contains c l = Array.exists (fun x -> x = l) c

let run ?(elim = true) ?(frozen = fun _ -> false) ?(max_rounds = 3) ~nvars
    ~units ~clauses () =
  let st = empty_stats () in
  let assign = Array.make (max nvars 1) (-1) in
  let repr = Array.init (max nvars 1) (fun v -> 2 * v) in
  let elim_v = Array.make (max nvars 1) false in
  let elim_stack = ref [] in
  let unsat = ref false in
  let rec find_rep v =
    let r = repr.(v) in
    let rv = lit_var r in
    if rv = v then r
    else begin
      let rr = find_rep rv in
      let rr = if lit_sign r then rr else lit_not rr in
      repr.(v) <- rr;
      rr
    end
  in
  let map l =
    let r = find_rep (lit_var l) in
    if lit_sign l then r else lit_not r
  in
  let is_rep v = lit_var (find_rep v) = v in
  let lit_val l =
    let a = assign.(lit_var l) in
    if a < 0 then -1 else if lit_sign l then a else 1 - a
  in
  let assert_lit l =
    let l = map l in
    match lit_val l with
    | 1 -> ()
    | 0 -> unsat := true
    | _ -> assign.(lit_var l) <- (if lit_sign l then 1 else 0)
  in
  List.iter assert_lit units;

  (* rewrite every clause through repr and the top-level assignment,
     extracting new units to a fixpoint.  Worklist-driven: one full
     sweep builds a variable-occurrence index, then only the clauses
     containing a newly assigned variable are revisited — a global
     re-scan per extracted unit made this pass dominate the pipeline
     on bit-blast-sized databases *)
  let normalize cl_list =
    let cls = Array.of_list cl_list in
    let n = Array.length cls in
    let dead = Array.make (max n 1) false in
    let occ = Array.make (max nvars 1) [] in
    let q = Queue.create () in
    let enqueue_var v = List.iter (fun i -> Queue.add i q) occ.(v) in
    let process i =
      if not (dead.(i) || !unsat) then begin
        let lits =
          List.sort_uniq compare (List.map map (Array.to_list cls.(i)))
        in
        let sat_or_tauto =
          List.exists
            (fun l -> lit_val l = 1 || List.mem (lit_not l) lits)
            lits
        in
        if sat_or_tauto then dead.(i) <- true
        else
          match List.filter (fun l -> lit_val l <> 0) lits with
          | [] -> unsat := true
          | [ l ] ->
            dead.(i) <- true;
            assert_lit l;
            if not !unsat then enqueue_var (lit_var l)
          | lits ->
            cls.(i) <- Array.of_list lits;
            List.iter
              (fun l ->
                 let v = lit_var l in
                 occ.(v) <- i :: occ.(v))
              lits
      end
    in
    for i = 0 to n - 1 do process i done;
    while not (Queue.is_empty q || !unsat) do
      process (Queue.take q)
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if not dead.(i) then out := cls.(i) :: !out
    done;
    !out
  in

  (* ---- binary-implication SCC collapsing ---- *)
  let scc_pass cl_list =
    let nn = 2 * nvars in
    let adj = Array.make (max nn 1) [] in
    let has_bin = ref false in
    List.iter
      (fun c ->
         if Array.length c = 2 then begin
           has_bin := true;
           adj.(lit_not c.(0)) <- c.(1) :: adj.(lit_not c.(0));
           adj.(lit_not c.(1)) <- c.(0) :: adj.(lit_not c.(1))
         end)
      cl_list;
    if not !has_bin then false
    else begin
      (* iterative Tarjan over the 2*nvars literal nodes *)
      let index = Array.make nn (-1) in
      let low = Array.make nn 0 in
      let on_stack = Array.make nn false in
      let comp = Array.make nn (-1) in
      let stack = ref [] in
      let counter = ref 0 and ncomp = ref 0 in
      let dfs = Stack.create () in
      for s = 0 to nn - 1 do
        if index.(s) < 0 then begin
          index.(s) <- !counter;
          low.(s) <- !counter;
          incr counter;
          stack := s :: !stack;
          on_stack.(s) <- true;
          Stack.push (s, ref adj.(s)) dfs;
          while not (Stack.is_empty dfs) do
            let v, rest = Stack.top dfs in
            match !rest with
            | w :: tl ->
              rest := tl;
              if index.(w) < 0 then begin
                index.(w) <- !counter;
                low.(w) <- !counter;
                incr counter;
                stack := w :: !stack;
                on_stack.(w) <- true;
                Stack.push (w, ref adj.(w)) dfs
              end
              else if on_stack.(w) && index.(w) < low.(v) then
                low.(v) <- index.(w)
            | [] ->
              ignore (Stack.pop dfs);
              if low.(v) = index.(v) then begin
                let stop = ref false in
                while not !stop do
                  match !stack with
                  | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    comp.(w) <- !ncomp;
                    if w = v then stop := true
                  | [] -> assert false
                done;
                incr ncomp
              end;
              (match Stack.top_opt dfs with
               | Some (p, _) -> if low.(v) < low.(p) then low.(p) <- low.(v)
               | None -> ())
          done
        end
      done;
      (* representatives are chosen per complementary SCC pair, lowest
         variable first, which keeps repr consistent under negation *)
      let changed = ref false in
      let scc_rep = Array.make !ncomp (-1) in
      for v = 0 to nvars - 1 do
        if (not !unsat) && (not elim_v.(v)) && is_rep v then begin
          let a = comp.(2 * v) and b = comp.(2 * v + 1) in
          if a = b then unsat := true
          else if scc_rep.(a) >= 0 then begin
            let r = scc_rep.(a) in
            if lit_var r <> v then begin
              let prev = assign.(v) in
              repr.(v) <- r;
              st.equivs <- st.equivs + 1;
              changed := true;
              if prev >= 0 then begin
                assign.(v) <- -1;
                assert_lit (if prev = 1 then 2 * v else (2 * v) + 1)
              end
            end
          end
          else begin
            scc_rep.(a) <- 2 * v;
            scc_rep.(b) <- (2 * v) + 1
          end
        end
      done;
      !changed
    end
  in

  (* ---- occurrence-list clause store for the remaining passes ---- *)
  let build lst =
    let cls = Array.of_list lst in
    let n = Array.length cls in
    let dead = Array.make (max n 1) false in
    let sigs = Array.make (max n 1) 0 in
    Array.iteri (fun i c -> sigs.(i) <- csig c) cls;
    let occ = Array.make (max (2 * nvars) 1) [] in
    Array.iteri
      (fun i c -> Array.iter (fun l -> occ.(l) <- i :: occ.(l)) c)
      cls;
    (cls, n, dead, sigs, occ)
  in

  (* ---- failed-literal probing (bounded unit-propagation lookahead) *)
  let probe_pass (cls, _n, dead, _sigs, occ) =
    let changed = ref false in
    let budget = ref 200_000 in
    let temp = Array.make (max nvars 1) (-1) in
    let tval l =
      let v = lit_var l in
      let a = if assign.(v) >= 0 then assign.(v) else temp.(v) in
      if a < 0 then -1 else if lit_sign l then a else 1 - a
    in
    let probe_lit l0 =
      let trail = ref [] in
      let conflict = ref false in
      let q = Queue.create () in
      let enq l =
        match tval l with
        | 1 -> ()
        | 0 -> conflict := true
        | _ ->
          temp.(lit_var l) <- (if lit_sign l then 1 else 0);
          trail := lit_var l :: !trail;
          Queue.push l q
      in
      enq l0;
      while (not !conflict) && (not (Queue.is_empty q)) && !budget > 0 do
        let l = Queue.pop q in
        List.iter
          (fun ci ->
             if (not !conflict) && not dead.(ci) then begin
               decr budget;
               let c = cls.(ci) in
               let pending = ref (-1) and cnt = ref 0 and sat = ref false in
               Array.iter
                 (fun x ->
                    match tval x with
                    | 1 -> sat := true
                    | -1 ->
                      incr cnt;
                      pending := x
                    | _ -> ())
                 c;
               if not !sat then
                 if !cnt = 0 then conflict := true
                 else if !cnt = 1 then enq !pending
             end)
          occ.(lit_not l)
      done;
      List.iter (fun v -> temp.(v) <- -1) !trail;
      !conflict
    in
    let v = ref 0 in
    while !v < nvars && !budget > 0 && not !unsat do
      let vv = !v in
      if
        assign.(vv) < 0 && (not elim_v.(vv)) && is_rep vv
        && (occ.(2 * vv) <> [] || occ.((2 * vv) + 1) <> [])
      then
        if probe_lit (2 * vv) then begin
          st.probed <- st.probed + 1;
          changed := true;
          assert_lit ((2 * vv) + 1)
        end
        else if probe_lit ((2 * vv) + 1) then begin
          st.probed <- st.probed + 1;
          changed := true;
          assert_lit (2 * vv)
        end;
      incr v
    done;
    !changed
  in

  (* ---- subsumption + self-subsuming resolution ---- *)
  let subsume_pass (cls, n, dead, sigs, occ) =
    let changed = ref false in
    let subset_except skip small big =
      Array.for_all (fun l -> l = skip || contains big l) small
    in
    for ci = 0 to n - 1 do
      if not dead.(ci) then begin
        let c = cls.(ci) in
        (* backward subsumption via the literal with the fewest occs *)
        let best = ref c.(0) in
        Array.iter
          (fun l ->
             if List.compare_lengths occ.(l) occ.(!best) < 0 then best := l)
          c;
        List.iter
          (fun di ->
             if di <> ci && not dead.(di) then begin
               let d = cls.(di) in
               if
                 Array.length d >= Array.length c
                 && sigs.(ci) land lnot sigs.(di) = 0
                 && contains d !best
                 && subset_except min_int c d
               then begin
                 dead.(di) <- true;
                 st.subsumed <- st.subsumed + 1;
                 changed := true
               end
             end)
          occ.(!best);
        (* self-subsumption: (C \ {l}) u {~l} <= D strengthens D *)
        if not dead.(ci) then
          Array.iter
            (fun l ->
               List.iter
                 (fun di ->
                    if di <> ci && not dead.(di) then begin
                      let d = cls.(di) in
                      if
                        Array.length d >= Array.length c
                        && sigs.(ci) land lnot sigs.(di) land lnot (lit_bit l)
                           = 0
                        && contains d (lit_not l)
                        && subset_except l c d
                      then begin
                        let d' =
                          Array.of_list
                            (List.filter
                               (fun x -> x <> lit_not l)
                               (Array.to_list d))
                        in
                        cls.(di) <- d';
                        sigs.(di) <- csig d';
                        st.strengthened <- st.strengthened + 1;
                        changed := true;
                        match Array.length d' with
                        | 0 -> unsat := true
                        | 1 ->
                          assert_lit d'.(0);
                          dead.(di) <- true
                        | _ -> ()
                      end
                    end)
                 occ.(lit_not l))
            c
      end
    done;
    !changed
  in

  (* ---- bounded variable elimination ---- *)
  let elim_pass (cls, _n, dead, _sigs, occ) =
    (* resolvents produced this pass are not indexed in occ, so any
       variable they mention is off-limits until the next round *)
    let touched = Array.make (max nvars 1) false in
    let new_clauses = ref [] in
    let occs_of l =
      List.filter (fun ci -> (not dead.(ci)) && contains cls.(ci) l) occ.(l)
    in
    for v = 0 to nvars - 1 do
      if
        (not !unsat) && assign.(v) < 0 && (not elim_v.(v)) && (not (frozen v))
        && is_rep v && not touched.(v)
      then begin
        let posc = occs_of (2 * v) and negc = occs_of ((2 * v) + 1) in
        let np = List.length posc and nn = List.length negc in
        if (np > 0 || nn > 0) && np * nn <= 16 && np + nn <= 10 then begin
          let resolve ci di =
            let lits = ref [] in
            Array.iter
              (fun l -> if lit_var l <> v then lits := l :: !lits)
              cls.(ci);
            Array.iter
              (fun l -> if lit_var l <> v then lits := l :: !lits)
              cls.(di);
            let lits = List.sort_uniq compare !lits in
            if List.exists (fun l -> List.mem (lit_not l) lits) lits then None
            else Some lits
          in
          let resolvents = ref [] and ok = ref true in
          List.iter
            (fun ci ->
               List.iter
                 (fun di ->
                    if !ok then
                      match resolve ci di with
                      | None -> ()
                      | Some lits ->
                        if List.length lits > 16 then ok := false
                        else resolvents := lits :: !resolvents)
                 negc)
            posc;
          if !ok && List.length !resolvents <= np + nn then begin
            let saved = List.map (fun ci -> cls.(ci)) (posc @ negc) in
            List.iter (fun ci -> dead.(ci) <- true) (posc @ negc);
            elim_stack := (v, saved) :: !elim_stack;
            elim_v.(v) <- true;
            st.eliminated <- st.eliminated + 1;
            List.iter
              (fun lits ->
                 List.iter (fun l -> touched.(lit_var l) <- true) lits;
                 match lits with
                 | [] -> unsat := true
                 | [ l ] -> assert_lit l
                 | _ -> new_clauses := Array.of_list lits :: !new_clauses)
              !resolvents
          end
        end
      end
    done;
    !new_clauses
  in

  (* ---- driver ---- *)
  let cur = ref (normalize clauses) in
  let continue_ = ref true in
  while !continue_ && (not !unsat) && st.rounds < max_rounds do
    st.rounds <- st.rounds + 1;
    let changed = ref false in
    if scc_pass !cur then begin
      changed := true;
      cur := normalize !cur
    end;
    if not !unsat then begin
      let ((cls, n, dead, _, _) as db) = build !cur in
      if subsume_pass db then changed := true;
      if (not !unsat) && probe_pass db then changed := true;
      let elim_before = st.eliminated in
      let fresh = if elim && not !unsat then elim_pass db else [] in
      if st.eliminated > elim_before then changed := true;
      let alive = ref fresh in
      for i = n - 1 downto 0 do
        if not dead.(i) then alive := cls.(i) :: !alive
      done;
      (* a pass that only asserted units still needs renormalizing *)
      cur := normalize !alive
    end;
    continue_ := !changed
  done;

  (* path-compress repr fully before publishing it *)
  for v = 0 to nvars - 1 do
    ignore (find_rep v)
  done;
  let units_out = ref [] in
  for v = nvars - 1 downto 0 do
    if assign.(v) = 1 then units_out := (2 * v) :: !units_out
    else if assign.(v) = 0 then units_out := ((2 * v) + 1) :: !units_out
  done;
  {
    r_clauses = (if !unsat then [] else !cur);
    r_units = (if !unsat then [] else !units_out);
    r_unsat = !unsat;
    r_repr = repr;
    r_elim = !elim_stack;
    r_stats = st;
  }

let extend_model r model =
  let lit_true l =
    let l = map_lit r.r_repr l in
    if lit_sign l then model.(lit_var l) else not model.(lit_var l)
  in
  (* most recently eliminated first: its saved clauses only mention
     variables that were still present when it was eliminated *)
  List.iter
    (fun (v, saved) ->
       let forced =
         List.exists
           (fun c ->
              contains c (2 * v)
              && Array.for_all (fun l -> lit_var l = v || not (lit_true l)) c)
           saved
       in
       model.(v) <- forced)
    r.r_elim;
  Array.iteri
    (fun v rl -> if rl <> 2 * v then model.(v) <- lit_true (2 * v))
    r.r_repr
