(** A pure CNF pre/inprocessing pipeline over integer-encoded literals.

    Literal encoding matches {!Rtlsat_sat.Cdcl}: [2*v] is the positive
    literal of variable [v], [2*v+1] the negative one.

    The pipeline runs up to [max_rounds] rounds of four passes until a
    fixpoint:

    - {b binary-implication SCC collapsing}: literals in one strongly
      connected component of the binary implication graph are
      equivalent; each class keeps one representative and the rest are
      substituted away ([repr]).  A literal in the same component as
      its negation makes the formula unsatisfiable.
    - {b subsumption and self-subsuming resolution} with occurrence
      lists and 62-bit clause signatures: a clause [C] deletes any
      superset clause, and [C \ {l} U {~l} <= D] strengthens [D] by
      removing [~l].
    - {b failed-literal probing} (bounded): if asserting [l] leads to a
      conflict by unit propagation alone, [~l] is a top-level unit.
    - {b bounded variable elimination} (only with [elim:true]): a
      variable whose resolvent set is no larger than the clauses it
      replaces is resolved away; the replaced clauses are saved on
      [elim] so a model of the simplified formula can be extended to
      the eliminated variable ({!extend_model}).

    The result is equisatisfiable with the input, and every model of
    the output extends to a model of the input via [repr] and [elim]. *)

type stats = {
  mutable subsumed : int;      (** clauses deleted by subsumption *)
  mutable strengthened : int;  (** literals removed by self-subsumption *)
  mutable eliminated : int;    (** variables resolved away *)
  mutable probed : int;        (** failed literals turned into units *)
  mutable equivs : int;        (** variables substituted by SCC collapsing *)
  mutable rounds : int;        (** pipeline rounds actually run *)
}

val empty_stats : unit -> stats

val add_stats : stats -> stats -> unit
(** [add_stats acc s] accumulates [s] into [acc] (rounds included). *)

type result = {
  r_clauses : int array list;
      (** simplified clause database; every clause has >= 2 literals *)
  r_units : int list;
      (** top-level unit literals (input units plus derived ones),
          over representative variables only *)
  r_unsat : bool;  (** the formula was found unsatisfiable *)
  r_repr : int array;
      (** [r_repr.(v)] is the representative literal of variable [v];
          [2*v] when [v] was not substituted.  Fully path-compressed:
          the representative's own entry is always the identity. *)
  r_elim : (int * int array list) list;
      (** eliminated variables, most recently eliminated first, each
          with the clauses it occurred in at elimination time *)
  r_stats : stats;
}

val map_lit : int array -> int -> int
(** [map_lit repr l] rewrites literal [l] through a representative
    map as returned in [r_repr]. *)

val run :
  ?elim:bool ->
  ?frozen:(int -> bool) ->
  ?max_rounds:int ->
  nvars:int ->
  units:int list ->
  clauses:int array list ->
  unit ->
  result
(** Simplify [clauses] (plus top-level [units]) over variables
    [0 .. nvars-1].

    [elim] (default [true]) enables bounded variable elimination;
    disable it when the consumer may later add clauses or assume
    literals over arbitrary variables (e.g. incremental solving).
    [frozen] marks variables that must never be eliminated (assumption
    variables); substitution and units still apply to them, so
    consumers must rewrite their own literals through [r_repr]. *)

val extend_model : result -> bool array -> unit
(** [extend_model r model] completes a model of the simplified formula
    (values for representative variables) into a model of the original
    one, writing values for eliminated and substituted variables in
    place.  An eliminated variable is set true iff one of its saved
    positive clauses has every other literal false. *)
