open Types
module Interval = Rtlsat_interval.Interval

type t = {
  kinds : kind Vec.t;
  names : string option Vec.t;
  cls : clause Vec.t;
  cns : constr Vec.t;
}

let create () =
  {
    kinds = Vec.create ~dummy:Bool ();
    names = Vec.create ~dummy:None ();
    cls = Vec.create ~dummy:[||] ();
    cns = Vec.create ~dummy:(Lin_eq { terms = []; const = 0 }) ();
  }

let new_var p ?name kind =
  let v = Vec.length p.kinds in
  Vec.push p.kinds kind;
  Vec.push p.names name;
  v

let new_bool p ?name () = new_var p ?name Bool
let new_word p ?name dom = new_var p ?name (Word dom)

let n_vars p = Vec.length p.kinds
let kind p v = Vec.get p.kinds v
let is_bool_var p v = kind p v = Bool

let initial_domain p v =
  match kind p v with Bool -> Interval.bool_dom | Word d -> d

let var_name p v =
  match Vec.get p.names v with
  | Some s -> s
  | None -> (if is_bool_var p v then "b" else "w") ^ string_of_int v

let add_clause p cl =
  if Array.length cl = 0 then invalid_arg "Problem.add_clause: empty clause";
  Vec.push p.cls cl

let add_constr p c = Vec.push p.cns c

let clauses p = Vec.to_list p.cls
let constrs p = Array.of_list (Vec.to_list p.cns)
let n_clauses p = Vec.length p.cls
let n_constrs p = Vec.length p.cns
let clause_at p i = Vec.get p.cls i
let constr_at p i = Vec.get p.cns i

let iter_clauses f p = Vec.iter f p.cls
let iter_constrs f p = Vec.iteri f p.cns

let check_model p env =
  let name = var_name p in
  let exception Violation of string in
  try
    for v = 0 to n_vars p - 1 do
      let value = env v in
      if not (Interval.mem value (initial_domain p v)) then
        raise (Violation (Printf.sprintf "domain violated: %s = %d" (name v) value))
    done;
    iter_clauses
      (fun cl ->
         if not (eval_clause env cl) then
           raise
             (Violation
                (Format.asprintf "clause falsified: %a" (pp_clause ~name ()) cl)))
      p;
    iter_constrs
      (fun _ c ->
         if not (eval_constr env c) then
           raise
             (Violation
                (Format.asprintf "constraint violated: %a" (pp_constr ~name ()) c)))
      p;
    Ok "model ok"
  with Violation msg -> Error msg

let pp fmt p =
  let name = var_name p in
  Format.fprintf fmt "problem: %d vars, %d clauses, %d constraints@." (n_vars p)
    (n_clauses p) (n_constrs p);
  for v = 0 to n_vars p - 1 do
    match kind p v with
    | Bool -> Format.fprintf fmt "  bool %s@." (name v)
    | Word d -> Format.fprintf fmt "  word %s in %a@." (name v) Interval.pp d
  done;
  iter_clauses (fun cl -> Format.fprintf fmt "  %a@." (pp_clause ~name ()) cl) p;
  iter_constrs (fun _ c -> Format.fprintf fmt "  %a@." (pp_constr ~name ()) c) p
