(** RTL netlist → hybrid constraint problem.

    Boolean gates become clauses (Tseitin); word-level operators
    become linear-arithmetic constraints with auxiliary variables
    exactly as in §2.1 of the paper: wrap-around adders carry a fresh
    overflow Boolean into the equality, comparators become predicate
    constraints plus the paper's comparator clauses, shifts and
    extractions introduce remainder variables, and bitwise word
    operators are split into per-bit Booleans linked by channeling
    equalities (the §6 "splitting" extension).

    The encoding keeps the netlist attached so the structural decision
    strategy (§4) can reason about gates and muxes. *)

open Types

type t = {
  problem : Problem.t;
  circuit : Rtlsat_rtl.Ir.circuit;
  mutable var_of : var array;  (** node id → solver variable *)
  bits_cache : (int, var array) Hashtbl.t;
      (** per-bit channeling Booleans of word nodes, persistent across
          {!extend} calls *)
}

val encode : Rtlsat_rtl.Ir.circuit -> t
(** @raise Invalid_argument if the circuit contains registers (unroll
    sequential circuits with [Rtlsat_bmc.Unroll] first). *)

val extend : t -> unit
(** Incremental re-encode after the circuit grew (e.g.
    [Rtlsat_bmc.Unroll.extend] appended frames): encodes exactly the
    nodes without a variable yet, appending to the same problem.
    Existing variable numbering is untouched, so a solver session can
    keep its learned clauses.
    @raise Invalid_argument if a fresh node is a register. *)

val var : t -> Rtlsat_rtl.Ir.node -> var

val assume_bool : t -> Rtlsat_rtl.Ir.node -> bool -> unit
(** Add a unit clause forcing a Boolean node's value — the
    "proposition" of the paper's examples. *)

val assume_interval : t -> Rtlsat_rtl.Ir.node -> Rtlsat_interval.Interval.t -> unit
(** Force a word node into an interval (unit bound clauses). *)
