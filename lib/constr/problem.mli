(** A hybrid satisfiability problem: variables with finite domains,
    hybrid clauses and arithmetic constraints (§2.1). *)

open Types

type t

val create : unit -> t

val new_bool : t -> ?name:string -> unit -> var
val new_word : t -> ?name:string -> Rtlsat_interval.Interval.t -> var

val n_vars : t -> int
val kind : t -> var -> kind
val is_bool_var : t -> var -> bool
val initial_domain : t -> var -> Rtlsat_interval.Interval.t
(** ⟨0,1⟩ for Booleans. *)

val var_name : t -> var -> string

val add_clause : t -> clause -> unit
(** @raise Invalid_argument on an empty clause. *)

val add_constr : t -> constr -> unit

val clauses : t -> clause list
(** In insertion order. *)

val constrs : t -> constr array
val n_clauses : t -> int
val n_constrs : t -> int

val clause_at : t -> int -> clause
(** i-th clause in insertion order — numbering is stable under
    appends, so an incremental consumer can sync by index. *)

val constr_at : t -> int -> constr

val iter_clauses : (clause -> unit) -> t -> unit
val iter_constrs : (int -> constr -> unit) -> t -> unit

val check_model : t -> (var -> int) -> (string, string) result
(** [Ok _] when the assignment satisfies every domain, clause and
    constraint; [Error msg] describes the first violation. *)

val pp : Format.formatter -> t -> unit
