open Types
module Ir = Rtlsat_rtl.Ir
module Interval = Rtlsat_interval.Interval

type t = {
  problem : Problem.t;
  circuit : Ir.circuit;
  mutable var_of : var array;
  bits_cache : (int, var array) Hashtbl.t;
}

let term c v = (c, v)
let lin terms const = lin_of_terms terms const

(* Tseitin clauses for the Boolean operators *)

let clauses_not p ~z ~a =
  Problem.add_clause p [| Neg z; Neg a |];
  Problem.add_clause p [| Pos z; Pos a |]

let clauses_and p ~z ~args =
  Array.iter (fun a -> Problem.add_clause p [| Neg z; Pos a |]) args;
  let long = Array.append [| Pos z |] (Array.map (fun a -> Neg a) args) in
  Problem.add_clause p long

let clauses_or p ~z ~args =
  Array.iter (fun a -> Problem.add_clause p [| Pos z; Neg a |]) args;
  let long = Array.append [| Neg z |] (Array.map (fun a -> Pos a) args) in
  Problem.add_clause p long

let clauses_xor p ~z ~a ~b =
  Problem.add_clause p [| Neg z; Pos a; Pos b |];
  Problem.add_clause p [| Neg z; Neg a; Neg b |];
  Problem.add_clause p [| Pos z; Pos a; Neg b |];
  Problem.add_clause p [| Pos z; Neg a; Pos b |]

let clauses_bool_mux p ~z ~sel ~t ~e =
  Problem.add_clause p [| Neg sel; Neg t; Pos z |];
  Problem.add_clause p [| Neg sel; Pos t; Neg z |];
  Problem.add_clause p [| Pos sel; Neg e; Pos z |];
  Problem.add_clause p [| Pos sel; Pos e; Neg z |];
  (* redundant but propagation-strengthening: t=e -> z=t *)
  Problem.add_clause p [| Neg t; Neg e; Pos z |];
  Problem.add_clause p [| Pos t; Pos e; Neg z |]

(* Comparator model of §2.1: b1 |= a<=b, b2 |= b<=a, plus the paper's
   consistency clauses. *)
let encode_cmp p op ~z ~av ~bv ~name =
  let diff_ab = lin [ term 1 av; term (-1) bv ] 0 in      (* a - b <= 0 *)
  let diff_ba = lin [ term 1 bv; term (-1) av ] 0 in      (* b - a <= 0 *)
  match op with
  | Ir.Lt -> Problem.add_constr p (Pred { b = z; e = lin [ term 1 av; term (-1) bv ] 1 })
  | Ir.Le -> Problem.add_constr p (Pred { b = z; e = diff_ab })
  | Ir.Gt -> Problem.add_constr p (Pred { b = z; e = lin [ term 1 bv; term (-1) av ] 1 })
  | Ir.Ge -> Problem.add_constr p (Pred { b = z; e = diff_ba })
  | Ir.Eq | Ir.Ne ->
    let p1 = Problem.new_bool p ~name:(name ^ "_le") () in
    let p2 = Problem.new_bool p ~name:(name ^ "_ge") () in
    Problem.add_constr p (Pred { b = p1; e = diff_ab });
    Problem.add_constr p (Pred { b = p2; e = diff_ba });
    Problem.add_clause p [| Pos p1; Pos p2 |];
    (match op with
     | Ir.Eq ->
       Problem.add_clause p [| Neg z; Pos p1 |];
       Problem.add_clause p [| Neg z; Pos p2 |];
       Problem.add_clause p [| Pos z; Neg p1; Neg p2 |]
     | Ir.Ne ->
       Problem.add_clause p [| Pos z; Pos p1 |];
       Problem.add_clause p [| Pos z; Pos p2 |];
       Problem.add_clause p [| Neg z; Neg p1; Neg p2 |]
     | _ -> assert false)

let check_combinational nodes =
  List.iter
    (fun n -> match n.Ir.op with
       | Ir.Reg _ -> invalid_arg "Encode.encode: sequential circuit (unroll first)"
       | _ -> ())
    nodes

let encode_nodes t nodes =
  let p = t.problem in
  let bits_cache = t.bits_cache in
  let v n = t.var_of.(n.Ir.id) in
  let new_node_var n =
    let name = Ir.node_name n in
    if Ir.is_bool n then Problem.new_bool p ~name ()
    else Problem.new_word p ~name (Interval.of_width n.Ir.width)
  in
  let bits_of n =
    (* channel word node n into fresh per-bit Booleans (cached) *)
    match Hashtbl.find_opt bits_cache n.Ir.id with
    | Some bs -> bs
    | None ->
      let w = n.Ir.width in
      let name = Ir.node_name n in
      let bs =
        Array.init w (fun i ->
            Problem.new_bool p ~name:(Printf.sprintf "%s.%d" name i) ())
      in
      let terms =
        term (-1) (v n) :: List.init w (fun i -> term (1 lsl i) bs.(i))
      in
      Problem.add_constr p (Lin_eq (lin terms 0));
      Hashtbl.replace bits_cache n.Ir.id bs;
      bs
  in
  let encode_bitwise n a b mk_clauses =
    if n.Ir.width = 1 then begin
      let z = v n in
      mk_clauses ~z ~a:(v a) ~b:(v b)
    end
    else begin
      let za = bits_of a and zb = bits_of b and zz = bits_of n in
      Array.iteri (fun i _ -> mk_clauses ~z:zz.(i) ~a:za.(i) ~b:zb.(i)) zz
    end
  in
  let and_bit ~z ~a ~b = clauses_and p ~z ~args:[| a; b |] in
  let or_bit ~z ~a ~b = clauses_or p ~z ~args:[| a; b |] in
  let xor_bit ~z ~a ~b = clauses_xor p ~z ~a ~b in
  let encode_node n =
    let zv = new_node_var n in
    t.var_of.(n.Ir.id) <- zv;
    match n.Ir.op with
    | Ir.Input -> ()
    | Ir.Reg _ -> assert false
    | Ir.Const value ->
      if Ir.is_bool n then
        Problem.add_clause p [| (if value = 1 then Pos zv else Neg zv) |]
      else begin
        Problem.add_clause p [| Ge (zv, value) |];
        Problem.add_clause p [| Le (zv, value) |]
      end
    | Ir.Not a -> clauses_not p ~z:zv ~a:(v a)
    | Ir.And ns -> clauses_and p ~z:zv ~args:(Array.map v ns)
    | Ir.Or ns -> clauses_or p ~z:zv ~args:(Array.map v ns)
    | Ir.Xor (a, b) -> clauses_xor p ~z:zv ~a:(v a) ~b:(v b)
    | Ir.Mux { sel; t; e } ->
      if Ir.is_bool n then clauses_bool_mux p ~z:zv ~sel:(v sel) ~t:(v t) ~e:(v e)
      else Problem.add_constr p (Mux_w { sel = v sel; t = v t; e = v e; z = zv })
    | Ir.Add { a; b; wrap } ->
      if wrap then begin
        let ovf = Problem.new_bool p ~name:(Ir.node_name n ^ "_ovf") () in
        let m = 1 lsl n.Ir.width in
        Problem.add_constr p
          (Lin_eq (lin [ term 1 (v a); term 1 (v b); term (-1) zv; term (-m) ovf ] 0))
      end
      else
        Problem.add_constr p
          (Lin_eq (lin [ term 1 (v a); term 1 (v b); term (-1) zv ] 0))
    | Ir.Sub { a; b } ->
      let bor = Problem.new_bool p ~name:(Ir.node_name n ^ "_bor") () in
      let m = 1 lsl n.Ir.width in
      Problem.add_constr p
        (Lin_eq (lin [ term 1 (v a); term (-1) (v b); term (-1) zv; term m bor ] 0))
    | Ir.Mul_const { k; a } ->
      Problem.add_constr p (Lin_eq (lin [ term k (v a); term (-1) zv ] 0))
    | Ir.Cmp { op; a; b } ->
      encode_cmp p op ~z:zv ~av:(v a) ~bv:(v b) ~name:(Ir.node_name n)
    | Ir.Concat { hi; lo } ->
      Problem.add_constr p
        (Lin_eq (lin [ term (1 lsl lo.Ir.width) (v hi); term 1 (v lo); term (-1) zv ] 0))
    | Ir.Extract { a; msb; lsb } ->
      let w = a.Ir.width in
      let terms = ref [ term 1 (v a); term (-(1 lsl lsb)) zv ] in
      if lsb > 0 then begin
        let lo_part =
          Problem.new_word p
            ~name:(Ir.node_name n ^ "_lo")
            (Interval.of_width lsb)
        in
        terms := term (-1) lo_part :: !terms
      end;
      if msb < w - 1 then begin
        let hi_part =
          Problem.new_word p
            ~name:(Ir.node_name n ^ "_hi")
            (Interval.of_width (w - 1 - msb))
        in
        terms := term (-(1 lsl (msb + 1))) hi_part :: !terms
      end;
      Problem.add_constr p (Lin_eq (lin !terms 0))
    | Ir.Zext a ->
      Problem.add_constr p (Lin_eq (lin [ term 1 (v a); term (-1) zv ] 0))
    | Ir.Shl { a; k } ->
      Problem.add_constr p (Lin_eq (lin [ term (1 lsl k) (v a); term (-1) zv ] 0))
    | Ir.Shr { a; k } ->
      let r =
        Problem.new_word p ~name:(Ir.node_name n ^ "_rem") (Interval.of_width k)
      in
      Problem.add_constr p
        (Lin_eq (lin [ term 1 (v a); term (-(1 lsl k)) zv; term (-1) r ] 0))
    | Ir.Bitand (a, b) -> encode_bitwise n a b and_bit
    | Ir.Bitor (a, b) -> encode_bitwise n a b or_bit
    | Ir.Bitxor (a, b) -> encode_bitwise n a b xor_bit
  in
  List.iter encode_node nodes

let encode circuit =
  check_combinational (Ir.nodes circuit);
  let t =
    {
      problem = Problem.create ();
      circuit;
      var_of = Array.make circuit.Ir.ncount (-1);
      (* per-bit Boolean splitting cache for bitwise word operators;
         persistent so incremental extension reuses channelings *)
      bits_cache = Hashtbl.create 7;
    }
  in
  encode_nodes t (Ir.nodes circuit);
  t

(* incremental path: the circuit grew (e.g. more unrolled frames);
   encode only the nodes that have no variable yet.  Node ids are
   append-only, so existing variables — and the problem's numbering —
   are untouched. *)
let extend t =
  let c = t.circuit in
  if c.Ir.ncount > Array.length t.var_of then begin
    let nv = Array.make c.Ir.ncount (-1) in
    Array.blit t.var_of 0 nv 0 (Array.length t.var_of);
    t.var_of <- nv
  end;
  let fresh = List.filter (fun n -> t.var_of.(n.Ir.id) = -1) (Ir.nodes c) in
  check_combinational fresh;
  encode_nodes t fresh

let var t n = t.var_of.(n.Rtlsat_rtl.Ir.id)

let assume_bool t n value =
  if not (Ir.is_bool n) then invalid_arg "Encode.assume_bool: word node";
  Problem.add_clause t.problem [| (if value then Pos (var t n) else Neg (var t n)) |]

let assume_interval t n iv =
  if Ir.is_bool n then invalid_arg "Encode.assume_interval: Boolean node";
  Problem.add_clause t.problem [| Ge (var t n, Interval.lo iv) |];
  Problem.add_clause t.problem [| Le (var t n, Interval.hi iv) |]
