(** Multicore solving over OCaml domains: engine-portfolio racing,
    cube-and-conquer for hard instances, and bound-parallel sweeps.

    All cancellation is cooperative — one shared [bool Atomic.t] per
    race, set by the first decisive finisher and polled by every
    engine at its existing step/fuel gates — so worker solver state is
    never interrupted asynchronously.  Each domain carries its own
    {!Rtlsat_obs.Obs.t} handle tagged with its worker id (trace/8
    ["worker"] field); counters are merged at join with
    {!Rtlsat_obs.Obs.merge_snapshots}. *)

module Exchange = Exchange

(** {1 The race primitive} *)

type 'a race_result = {
  winner : int option;
      (** index of the first worker whose result satisfied [decisive];
          [None] when no result did *)
  entries : 'a option array;
      (** every worker's result; [None] where the worker raised *)
  wall : float;  (** seconds from first spawn to last join *)
}

val race :
  decisive:('a -> bool) ->
  (worker:int -> cancel:bool Atomic.t -> 'a) array ->
  'a race_result
(** Run one domain per thunk; the first result satisfying [decisive]
    sets the shared [cancel] flag (CAS-elected winner), after which
    cooperative engines return promptly with their own (non-decisive)
    results.  Joins all domains before returning.  Exposed for the
    deterministic fast/slow portfolio test.
    @raise Invalid_argument on an empty array. *)

(** {1 Engine portfolio} *)

val portfolio_lineup :
  Rtlsat_harness.Engines.engine -> int -> Rtlsat_harness.Engines.engine list
(** The engines a [-j j] portfolio races: the requested engine first,
    then the remaining engines in default order, capped at [j] (and at
    the total engine count, 6). *)

type portfolio_result = {
  p_winner : Rtlsat_harness.Engines.engine option;
      (** engine whose decisive verdict won; [None] if all timed out *)
  p_run : Rtlsat_harness.Engines.run;
      (** the winning run, or the requested engine's run when nobody
          decided *)
  p_runs :
    (Rtlsat_harness.Engines.engine * Rtlsat_harness.Engines.run option) list;
      (** every contestant's run ([None] where the worker raised);
          losers report [Timeout] via cancellation *)
  p_wall : float;  (** wall clock of the whole race *)
  p_metrics : Rtlsat_obs.Obs.snapshot;
      (** all workers' observability counters, merged *)
}

val portfolio :
  ?req:Rtlsat_harness.Req.t ->
  j:int ->
  engine:Rtlsat_harness.Engines.engine ->
  Rtlsat_bmc.Bmc.instance ->
  portfolio_result
(** Race up to [j] engines on one shared (pre-unrolled) instance;
    first Sat/Unsat wins and cancels the rest.  The instance and its
    source circuit are only read by the workers — each engine builds
    its own encoding.  [req] (default {!Rtlsat_harness.Req.default})
    carries the budget and per-engine knobs as in
    {!Rtlsat_harness.Engines.run_instance}; each worker runs under a
    derived request whose [obs] is a fresh handle sharing [req.obs]'s
    trace/recorder sinks (which are internally locked), tagged with
    its worker id, and whose [cancel] is the race's shared flag
    ([req.cancel] is left untouched). *)

(** {1 Cube-and-conquer} *)

type cube_result = {
  c_verdict : Rtlsat_harness.Engines.verdict;
  c_time : float;
  c_cubes : int;       (** 0 when the probe or fallback decided alone *)
  c_refuted : int;     (** cubes proved Unsat *)
  c_vars : int list;   (** cube variables, best first *)
  c_exchange_pushed : int;  (** clauses offered to the exchange *)
  c_exchange_taken : int;   (** clauses imported by some worker *)
  c_probe_time : float;
  c_metrics : Rtlsat_obs.Obs.snapshot;
      (** probe + all workers, merged *)
}

val cube_solve :
  ?req:Rtlsat_harness.Req.t ->
  ?probe_budget:float ->
  j:int ->
  engine:Rtlsat_harness.Engines.engine ->
  Rtlsat_bmc.Bmc.instance ->
  cube_result
(** Cube-and-conquer a hard instance with a hybrid engine:

    - a short main-domain probe ([probe_budget] seconds, default 2)
      either decides the instance or warms activities and the interval
      split heap;
    - {!Rtlsat_core.Solver.Session.split_candidates} nominates cube
      variables; midpoint bisection over [k] of them yields [2^k ≥
      max 4 (2j)] cubes covering the root box exactly, so all-refuted
      is a sound [Unsat] and any replay-validated model is [Sat];
    - up to [j] domains drain the cube array through an atomic
      counter, each with its own encoding and session, posing cubes as
      assumption lists;
    - learned clauses of length 1 (any atom) and length 2 (Boolean
      literals only) are shared through a bounded lossy lock-free
      {!Exchange} and imported by other workers before each cube.
      Learned clauses never resolve away assumptions, so every shared
      lemma is valid for the whole problem, not just its cube.

    When the probe finds no splittable word interval, falls back to
    finishing the probe session sequentially under the full deadline.
    @raise Invalid_argument on a non-hybrid engine
    (Bitblast/Lazy_cdp have no split heap to nominate cubes). *)

(** {1 Bound-parallel sweeps} *)

val sweep :
  ?req:Rtlsat_harness.Req.t ->
  ?semantics:Rtlsat_bmc.Bmc.semantics ->
  j:int ->
  Rtlsat_harness.Engines.engine ->
  Rtlsat_rtl.Ir.circuit ->
  prop:Rtlsat_rtl.Ir.node ->
  bounds:int list ->
  Rtlsat_harness.Engines.sweep_step list
(** Partition the bound ladder round-robin over [min j #bounds]
    workers, each running its own private
    {!Rtlsat_harness.Engines.run_sweep} (own unroll, own session) on
    its subset; steps are returned in the caller's bound order.  No
    cancellation — every bound reports its own verdict, exactly as
    sequentially.  Verdicts match [-j 1]; per-bound carried-lemma
    counts differ (each session only carries lemmas from its own
    subset).  [j <= 1] degrades to the sequential sweep on the calling
    domain. *)
