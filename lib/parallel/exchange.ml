(* Bounded lock-free exchange for cross-worker clause sharing.

   A fixed ring of atomic cells plus an atomic write cursor.  Pushes
   claim a slot with [fetch_and_add] and overwrite whatever is there —
   the exchange is deliberately *lossy*: under pressure new short
   clauses evict old unconsumed ones, which bounds both memory and the
   time a consumer spends importing.  Losing a clause never loses
   soundness (shared clauses are redundant lemmas), it only loses a
   bit of pruning.

   Drains [exchange] each cell with [None], so every published value
   is consumed by exactly one drainer — two workers draining
   concurrently partition the content instead of duplicating it.
   (Duplicates would also be sound; partitioning is just cheaper.)

   Multi-producer, multi-consumer, no locks, no blocking: each
   operation is O(1) atomics per cell touched. *)

type 'a t = {
  cells : 'a option Atomic.t array;
  cursor : int Atomic.t;
  pushed : int Atomic.t;   (* total pushes, for observability *)
  taken : int Atomic.t;    (* total successful drains *)
}

let create cap =
  if cap <= 0 then invalid_arg "Exchange.create: cap must be positive";
  {
    cells = Array.init cap (fun _ -> Atomic.make None);
    cursor = Atomic.make 0;
    pushed = Atomic.make 0;
    taken = Atomic.make 0;
  }

let capacity t = Array.length t.cells

let push t x =
  let i = Atomic.fetch_and_add t.cursor 1 mod Array.length t.cells in
  Atomic.set t.cells.(i) (Some x);
  Atomic.incr t.pushed

let drain t f =
  Array.iter
    (fun cell ->
       (* skip the exchange when the cell is already empty — a plain
          read first avoids a write per empty cell *)
       if Atomic.get cell <> None then
         match Atomic.exchange cell None with
         | Some x ->
           Atomic.incr t.taken;
           f x
         | None -> ())
    t.cells

let pushed t = Atomic.get t.pushed
let taken t = Atomic.get t.taken
