(** Bounded lock-free multi-producer/multi-consumer exchange, used to
    ship short learned clauses between solver domains.

    Lossy by design: a fixed ring of atomic cells where a push may
    overwrite an unconsumed value.  That bounds memory and import time
    regardless of producer rate, and is sound for clause sharing —
    every shared clause is a redundant lemma, so dropping one only
    costs pruning, never correctness. *)

type 'a t

val create : int -> 'a t
(** [create cap] — a ring of [cap] cells.
    @raise Invalid_argument when [cap <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Claim the next slot (atomic cursor) and publish, overwriting any
    unconsumed occupant.  Lock-free, O(1). *)

val drain : 'a t -> ('a -> unit) -> unit
(** Consume every currently-published value, emptying the cells.
    Each value goes to exactly one drainer even under concurrent
    drains.  No ordering guarantee. *)

val pushed : 'a t -> int
(** Total values ever pushed (including overwritten ones). *)

val taken : 'a t -> int
(** Total values ever drained. *)
