(* Multicore driver: portfolio racing and cube-and-conquer over
   OCaml domains.

   Cancellation is cooperative throughout — one [bool Atomic.t] per
   race, set by the first decisive finisher and polled by every engine
   at its existing step/fuel gates (Solver 64-step gate, Cdcl 256-step
   gate, Propagate 4096-event fuel gate).  Workers therefore observe a
   win within a bounded number of steps, not instantly; there is no
   asynchronous interruption anywhere, so solver state is never torn.

   Observability: each domain gets its own [Obs.t] handle tagged with
   its worker id ([Obs.set_worker], trace/8) and sharing the parent's
   trace and flight-recorder sinks, which are internally locked.
   Counters are merged into one run-wide snapshot at join
   ([Obs.merge_snapshots]). *)

module Exchange = Exchange
module Bmc = Rtlsat_bmc.Bmc
module Unroll = Rtlsat_bmc.Unroll
module E = Rtlsat_constr.Encode
module Solver = Rtlsat_core.Solver
module Engines = Rtlsat_harness.Engines
module Req = Rtlsat_harness.Req
module Obs = Rtlsat_obs.Obs
module Mono = Rtlsat_obs.Mono
open Rtlsat_constr.Types

(* ---- the race primitive ---- *)

type 'a race_result = {
  winner : int option;
  entries : 'a option array;  (* [None] where the worker raised *)
  wall : float;
}

let race ~decisive fns =
  let n = Array.length fns in
  if n = 0 then invalid_arg "Parallel.race: no contestants";
  let cancel = Atomic.make false in
  let winner = Atomic.make (-1) in
  let entries = Array.make n None in
  let t0 = Mono.now () in
  let body i () =
    match fns.(i) ~worker:i ~cancel with
    | r ->
      (* first decisive finisher wins and cancels the rest; losers
         keep their (non-decisive) results for reporting *)
      if decisive r && Atomic.compare_and_set winner (-1) i then
        Atomic.set cancel true;
      entries.(i) <- Some r
    | exception _ -> ()
  in
  let doms = Array.init n (fun i -> Domain.spawn (body i)) in
  Array.iter Domain.join doms;
  let w = Atomic.get winner in
  {
    winner = (if w >= 0 then Some w else None);
    entries;
    wall = Mono.now () -. t0;
  }

(* ---- per-worker observability ---- *)

let worker_obs parent w =
  if not parent.Obs.enabled then Obs.disabled
  else begin
    let o =
      Obs.create ?trace:parent.Obs.trace ?recorder:parent.Obs.recorder ()
    in
    Obs.set_worker o w;
    o
  end

(* ---- engine portfolio ---- *)

let all_engines =
  Engines.[ Hdpll_sp; Hdpll; Hdpll_s; Hdpll_p; Bitblast; Lazy_cdp ]

let portfolio_lineup engine j =
  let rest = List.filter (fun e -> e <> engine) all_engines in
  List.filteri (fun i _ -> i < max 1 j) (engine :: rest)

type portfolio_result = {
  p_winner : Engines.engine option;
  p_run : Engines.run;
  p_runs : (Engines.engine * Engines.run option) list;
  p_wall : float;
  p_metrics : Obs.snapshot;
}

let decisive_run (r : Engines.run) =
  match r.Engines.verdict with
  | Engines.Sat | Engines.Unsat -> true
  | Engines.Timeout | Engines.Abort _ -> false

let synth_timeout_run wall =
  {
    Engines.verdict = Engines.Timeout;
    time = wall;
    relations = 0;
    learn_time = 0.0;
    decisions = 0;
    conflicts = 0;
    stats = None;
    metrics = None;
  }

let merged_metrics entries metric_of =
  Obs.merge_snapshots
    (Array.to_list entries
     |> List.filter_map (fun e -> Option.bind e metric_of))

let portfolio ?(req = Req.default) ~j ~engine inst =
  let lineup = portfolio_lineup engine j in
  let fns =
    Array.of_list
      (List.mapi
         (fun w eng ->
            let o = worker_obs req.Req.obs w in
            fun ~worker:_ ~cancel ->
              ( eng,
                Engines.run_instance
                  ~req:{ req with Req.obs = o; cancel }
                  eng inst ))
         lineup)
  in
  let rr = race ~decisive:(fun (_, r) -> decisive_run r) fns in
  let run_of i = Option.map snd rr.entries.(i) in
  let p_run =
    match rr.winner with
    | Some w -> (match run_of w with Some r -> r | None -> synth_timeout_run rr.wall)
    | None ->
      (* nobody decided: report the requested engine's (timeout) run *)
      (match run_of 0 with Some r -> r | None -> synth_timeout_run rr.wall)
  in
  {
    p_winner =
      Option.map (fun w -> fst (Option.get rr.entries.(w))) rr.winner;
    p_run;
    p_runs =
      List.mapi (fun i eng -> (eng, run_of i)) lineup;
    p_wall = rr.wall;
    p_metrics =
      merged_metrics rr.entries (fun (_, r) -> r.Engines.metrics);
  }

(* ---- cube-and-conquer ---- *)

let is_hybrid = function
  | Engines.Hdpll | Engines.Hdpll_s | Engines.Hdpll_sp | Engines.Hdpll_p ->
    true
  | Engines.Bitblast | Engines.Lazy_cdp -> false

let base_options = function
  | Engines.Hdpll -> Solver.hdpll
  | Engines.Hdpll_s -> Solver.hdpll_s
  | Engines.Hdpll_sp -> Solver.hdpll_sp
  | Engines.Hdpll_p -> Solver.hdpll_p
  | Engines.Bitblast | Engines.Lazy_cdp ->
    invalid_arg "Parallel: cube-and-conquer needs a hybrid engine"

(* what may cross the exchange: unit clauses over any atom (interval
   bounds included) and binary clauses over Boolean literals only —
   [Session.add_clause] restricts multi-atom clauses to pure Boolean,
   same as input problems *)
let exportable cl =
  match Array.length cl with
  | 1 -> true
  | 2 ->
    Array.for_all (function Pos _ | Neg _ -> true | Ge _ | Le _ -> false) cl
  | _ -> false

(* midpoint-bisection cubes over the chosen variables: every variable
   contributes two halves, so [2^k] cubes cover the root box exactly —
   all-refuted is a sound Unsat, any Sat is Sat *)
let cubes_of candidates target =
  let rec dims k =
    if 1 lsl k >= target || k >= List.length candidates then k
    else dims (k + 1)
  in
  let k = dims 1 in
  let chosen = List.filteri (fun i _ -> i < k) candidates in
  List.fold_left
    (fun cubes (v, lo, hi) ->
       let mid = lo + ((hi - lo) / 2) in
       List.concat_map
         (fun cube -> [ Ge (v, mid + 1) :: cube; Le (v, mid) :: cube ])
         cubes)
    [ [] ] chosen
  |> List.map Array.of_list

type cube_result = {
  c_verdict : Engines.verdict;
  c_time : float;
  c_cubes : int;       (** 0 when the probe or fallback decided alone *)
  c_refuted : int;
  c_vars : int list;   (** cube variables, best first *)
  c_exchange_pushed : int;
  c_exchange_taken : int;
  c_probe_time : float;
  c_metrics : Obs.snapshot;
}

type cube_worker_verdict = W_sat | W_unsat_all | W_timeout | W_abort of string

let cube_solve ?(req = Req.default) ?(probe_budget = 2.0) ~j ~engine inst =
  if not (is_hybrid engine) then
    invalid_arg "Parallel.cube_solve: cube-and-conquer needs a hybrid engine";
  let obs = req.Req.obs in
  let j = max 1 j in
  let t0 = Mono.now () in
  let deadline = Req.deadline_from req t0 in
  let opts_for ~obs:o ~deadline ?cancel ?on_learn () =
    let base = base_options engine in
    {
      base with
      Solver.deadline;
      Solver.obs = o;
      Solver.learn_threshold = req.Req.learn_threshold;
      Solver.split = req.Req.split;
      Solver.simplify = req.Req.simplify;
      Solver.inprocess = req.Req.inprocess;
      Solver.cancel =
        (match cancel with Some c -> c | None -> req.Req.cancel);
      Solver.on_learn = on_learn;
    }
  in
  let encode () =
    let e = E.encode (Unroll.combo inst.Bmc.unrolled) in
    E.assume_bool e inst.Bmc.violation true;
    e
  in
  let finish ?(cubes = 0) ?(refuted = 0) ?(vars = []) ?(pushed = 0)
      ?(taken = 0) ~probe_time ~metrics verdict =
    {
      c_verdict = verdict;
      c_time = Mono.now () -. t0;
      c_cubes = cubes;
      c_refuted = refuted;
      c_vars = vars;
      c_exchange_pushed = pushed;
      c_exchange_taken = taken;
      c_probe_time = probe_time;
      c_metrics = metrics;
    }
  in
  (* --- probe on the main domain: a short solve that either decides
     the instance outright or warms activities and the split heap so
     [split_candidates] nominates informed cube variables --- *)
  let enc0 = encode () in
  let probe_deadline = Float.min deadline (t0 +. Float.max 0.1 probe_budget) in
  let sess0 =
    Solver.Session.create ~options:(opts_for ~obs ~deadline:probe_deadline ()) enc0
  in
  let probe = Solver.Session.solve ~deadline:probe_deadline sess0 in
  let probe_time = Mono.now () -. t0 in
  let verdict_of_result enc = function
    | Solver.Unsat -> Engines.Unsat
    | Solver.Timeout -> Engines.Timeout
    | Solver.Sat m ->
      if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then Engines.Sat
      else Engines.Abort "witness failed replay"
  in
  match
    verdict_of_result enc0 probe.Solver.Session.outcome.Solver.result
  with
  | (Engines.Sat | Engines.Unsat | Engines.Abort _) as v ->
    finish ~probe_time ~metrics:(Obs.snapshot obs) v
  | Engines.Timeout when Mono.now () >= deadline ->
    finish ~probe_time ~metrics:(Obs.snapshot obs) Engines.Timeout
  | Engines.Timeout ->
    let candidates = Solver.Session.split_candidates ~max:8 sess0 in
    if candidates = [] then begin
      (* nothing to cube on (no splittable word interval): spend the
         remaining budget on the probe session sequentially *)
      let r = Solver.Session.solve ~deadline sess0 in
      finish ~probe_time ~metrics:(Obs.snapshot obs)
        (verdict_of_result enc0 r.Solver.Session.outcome.Solver.result)
    end
    else begin
      let cubes = Array.of_list (cubes_of candidates (max (2 * j) 4)) in
      let ncubes = Array.length cubes in
      let next = Atomic.make 0 in
      let refuted = Atomic.make 0 in
      let xchg : (int * clause) Exchange.t = Exchange.create 256 in
      let worker ~worker:w ~cancel =
        let o = worker_obs obs w in
        let enc = encode () in
        let on_learn cl =
          if exportable cl then Exchange.push xchg (w, cl)
        in
        let sess =
          Solver.Session.create
            ~options:(opts_for ~obs:o ~deadline ~cancel ~on_learn ())
            enc
        in
        let my = ref W_unsat_all in
        let continue = ref true in
        while !continue && not (Atomic.get cancel) do
          let i = Atomic.fetch_and_add next 1 in
          if i >= ncubes then continue := false
          else begin
            (* import lemmas other workers shared; identical encodings
               make the atoms transfer verbatim, and learned clauses
               are valid without their producer's cube (assumptions
               appear negated in them, never resolved away) *)
            Exchange.drain xchg (fun (src, cl) ->
                if src <> w then Solver.Session.add_clause sess cl);
            let r = Solver.Session.solve ~assumptions:cubes.(i) ~deadline sess in
            match r.Solver.Session.outcome.Solver.result with
            | Solver.Unsat -> Atomic.incr refuted
            | Solver.Timeout ->
              my := W_timeout;
              continue := false
            | Solver.Sat m ->
              if Bmc.witness_ok inst (fun n -> m.(E.var enc n)) then
                my := W_sat
              else my := W_abort "witness failed replay";
              continue := false
          end
        done;
        (!my, Obs.snapshot o)
      in
      let nworkers = min j ncubes in
      let rr =
        race
          ~decisive:(fun (v, _) -> v = W_sat)
          (Array.init nworkers (fun _ -> worker))
      in
      let refuted = Atomic.get refuted in
      let metrics =
        Obs.merge_snapshots
          (Obs.snapshot obs
           :: (Array.to_list rr.entries
               |> List.filter_map (Option.map snd)))
      in
      let abort_msg =
        Array.to_list rr.entries
        |> List.find_map (function
          | Some (W_abort m, _) -> Some m
          | _ -> None)
      in
      let verdict =
        match (rr.winner, abort_msg) with
        | Some _, _ -> Engines.Sat
        | None, _ when refuted = ncubes -> Engines.Unsat
        | None, Some m -> Engines.Abort m
        | None, None -> Engines.Timeout
      in
      finish ~cubes:ncubes ~refuted
        ~vars:(List.map (fun (v, _, _) -> v) candidates)
        ~pushed:(Exchange.pushed xchg) ~taken:(Exchange.taken xchg)
        ~probe_time ~metrics verdict
    end

(* ---- parallel bound sweeps ---- *)

(* Round-robin partition of the bound ladder over [j] workers, each
   with its own private sweep state and solver session.  No
   cancellation: every bound must report its own verdict, exactly as
   in the sequential sweep.  Verdicts match [-j 1]; per-bound times
   and carried-lemma counts differ (each worker's session only carries
   lemmas from its own subset of bounds). *)
let sweep ?(req = Req.default) ?semantics ~j engine source ~prop ~bounds =
  let j = max 1 (min j (List.length bounds)) in
  if j <= 1 then
    Engines.run_sweep ~req ?semantics engine source ~prop ~bounds
  else begin
    let buckets = Array.make j [] in
    List.iteri (fun i b -> buckets.(i mod j) <- b :: buckets.(i mod j)) bounds;
    let buckets = Array.map List.rev buckets in
    let worker ~worker:w ~cancel:_ =
      let o = worker_obs req.Req.obs w in
      Engines.run_sweep
        ~req:{ req with Req.obs = o }
        ?semantics engine source ~prop ~bounds:buckets.(w)
    in
    let rr =
      race ~decisive:(fun _ -> false) (Array.init j (fun _ -> worker))
    in
    let steps =
      Array.to_list rr.entries |> List.concat_map (Option.value ~default:[])
    in
    (* restore the caller's bound order *)
    let order = List.mapi (fun i b -> (b, i)) bounds in
    List.sort
      (fun a b ->
         compare
           (List.assoc a.Engines.sw_bound order)
           (List.assoc b.Engines.sw_bound order))
      steps
  end
